package sweep_test

import (
	"fmt"
	"testing"

	"nsmac/sweep"
)

// TestPublicSpecDocPath drives the whole public surface the way an API user
// would: decode a document, resolve it against the registries, run it, and
// reassemble the same result from shards.
func TestPublicSpecDocPath(t *testing.T) {
	doc, err := sweep.ParseSpecDoc([]byte(`{
		"name": "public",
		"cases": ["wakeupc", "roundrobin"],
		"patterns": ["staggered:3", "simultaneous"],
		"ns": [64], "ks": [2, 8], "trials": 4, "seed": 17
	}`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := doc.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	whole, err := spec.Execute()
	if err != nil {
		t.Fatal(err)
	}
	wholeText := whole.Text()
	if len(whole.Cells) != 8 { // 2 cases × 2 patterns × 1 n × 2 ks
		t.Fatalf("got %d cells, want 8", len(whole.Cells))
	}

	var shards []*sweep.ShardResult
	for i := 0; i < 3; i++ {
		sr, err := spec.Shard(i, 3)
		if err != nil {
			t.Fatal(err)
		}
		data, err := sr.Encode()
		if err != nil {
			t.Fatal(err)
		}
		back, err := sweep.DecodeShardResult(data)
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, back)
	}
	merged, err := sweep.Merge(shards...)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Text() != wholeText {
		t.Error("public shard→merge path is not byte-identical to the whole run")
	}

	// The registry and helper surface must be reachable through the public
	// package too.
	if len(sweep.CaseNames()) < len(sweep.StandardCaseNames()) {
		t.Error("registry listing truncated")
	}
	if got := sweep.ShardTrials(5, 1, 2); got != 2 {
		t.Errorf("ShardTrials(5,1,2) = %d, want 2", got)
	}
	if sweep.TrialSeed(17, 0, 1) == sweep.TrialSeed(17, 1, 0) {
		t.Error("trial seeds collide")
	}
	if _, err := spec.Doc(); err != nil {
		t.Errorf("public spec does not dump: %v", err)
	}
}

// ExampleMerge shows the cross-process workflow end to end: resolve one
// document, run it as three shards (here in one process), merge, and render.
func ExampleMerge() {
	doc, _ := sweep.ParseSpecDoc([]byte(`{
		"name": "example",
		"cases": ["roundrobin"],
		"patterns": ["simultaneous"],
		"ns": [16], "ks": [4], "trials": 6, "seed": 1
	}`))
	spec, _ := doc.Resolve()

	var shards []*sweep.ShardResult
	for i := 0; i < 3; i++ {
		sr, _ := spec.Shard(i, 3) // each of these can run on its own machine
		shards = append(shards, sr)
	}
	res, _ := sweep.Merge(shards...)
	csv := res.CSV()
	fmt.Print(csv[:len(csv)-len("\n")])
	// Output:
	// algo,pattern,n,k,trials,ok,mean,median,p95,max,collisions,silences,transmissions,success_rate
	// roundrobin,simultaneous@0,16,4,6,6,2.5,1.0,8.2,10,0,15,6,1.000
}
