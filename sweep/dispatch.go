package sweep

import (
	"os"

	"nsmac/internal/dispatch"
)

// Distributed shard dispatch (aliases into nsmac/internal/dispatch): run a
// spec document's trial-striped shard plan through a pluggable Executor —
// in-process, one subprocess per shard, or an arbitrary command template
// (ssh, kubectl) — persist the envelopes in a resumable RunStore, and merge
// to output byte-identical to the single-process run.
//
//	doc, _ := sweep.ParseSpecDoc(data)
//	store := &sweep.RunStore{Dir: "runs"}
//	d := &sweep.Driver{
//	    Exec:        sweep.Subprocess{Binary: "./wakeup-bench"},
//	    Store:       store,
//	    Resume:      true, // re-run only missing or corrupt shards
//	    Concurrency: 3,
//	}
//	res, _ := d.Run(ctx, doc, 8)   // 8-shard plan
//	fmt.Print(res.Text())          // == the one-process run, byte for byte
//
// The same machinery backs `wakeup-bench run -spec grid.json -shards m
// -exec ... -store dir -resume`.
type (
	// Executor runs one shard of a plan and returns its envelope.
	Executor = dispatch.Executor
	// ShardPlan identifies one shard: spec document, grid fingerprint, and
	// plan coordinates.
	ShardPlan = dispatch.ShardPlan
	// Local executes shards in-process under a worker budget.
	Local = dispatch.Local
	// Subprocess executes each shard by exec'ing a shard binary with
	// -spec/-shard/-out and decoding the envelope it writes.
	Subprocess = dispatch.Subprocess
	// Command executes each shard through a user argv template (ssh,
	// kubectl, ...) that streams the envelope JSON over stdout.
	Command = dispatch.Command
	// RunStore persists shard envelopes under
	// <dir>/<grid-fingerprint>/<i>-of-<m>.json with atomic writes, making
	// runs resumable.
	RunStore = dispatch.RunStore
	// Driver executes a full shard plan: bounded concurrency, per-shard
	// attempt caps, progress callbacks, resume, context cancellation.
	Driver = dispatch.Driver
	// Event is one driver progress notification.
	Event = dispatch.Event
	// EventState classifies a driver progress event.
	EventState = dispatch.EventState
)

// Driver progress event states.
const (
	EventCached = dispatch.EventCached
	EventStart  = dispatch.EventStart
	EventDone   = dispatch.EventDone
	EventRetry  = dispatch.EventRetry
	EventFailed = dispatch.EventFailed
)

// PlanShards resolves the document and returns its count-shard plan plus
// the skip lines for dropped cell combinations.
func PlanShards(doc SpecDoc, count int) ([]ShardPlan, []string, error) {
	return dispatch.PlanShards(doc, count)
}

// WriteFileAtomic writes data to path via a temp file in the same directory
// plus a rename, so a killed writer can never leave a truncated file — the
// discipline every shard-envelope writer (both CLIs included) follows.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return dispatch.WriteFileAtomic(path, data, perm)
}
