package sweep

import (
	"net/http"

	"nsmac/internal/campaign"
)

// Sweep as a service (aliases into nsmac/internal/campaign): a long-lived
// campaign server owns a queue of shard work cut from submitted manifests —
// many spec documents against one RunStore — and pull-based workers lease
// shards over HTTP/JSON, heartbeat to keep their visibility timeout alive,
// and upload validated envelopes. Leases expire and re-enqueue when a
// worker dies; stragglers get stolen; shard counts autotune from observed
// wall clock. Merged results stream while shards are in flight and finish
// byte-identical to the one-process run.
//
//	srv := sweep.NewCampaignServer(sweep.CampaignOptions{
//	    Store: &sweep.RunStore{Dir: "runs"},
//	})
//	go http.ListenAndServe(addr, sweep.CampaignHandler(srv))
//	...
//	cl := sweep.NewCampaignClient("http://"+addr, nil)
//	id, _ := cl.Submit(ctx, sweep.NewCampaign("night-sweep", "grid", doc, 0))
//	w := &sweep.CampaignWorker{Client: cl, ID: "w1"}
//	_ = w.Run(ctx)
//
// The same machinery backs `wakeup-bench serve`, `submit`, `status` and
// `work`.
type (
	// CampaignManifest is the campaign submission document: named grids
	// (full spec documents) with optional fixed shard counts.
	CampaignManifest = campaign.Manifest
	// CampaignGrid is one named sweep inside a manifest.
	CampaignGrid = campaign.ManifestGrid
	// CampaignOptions configures a campaign server (lease timeout, steal
	// grace, attempt caps, autotune targets, store, clock).
	CampaignOptions = campaign.Options
	// CampaignServer owns the shard queue and the lease lifecycle.
	CampaignServer = campaign.Server
	// CampaignClient speaks the server's HTTP API.
	CampaignClient = campaign.Client
	// CampaignWorker pulls leases and runs them through an Executor.
	CampaignWorker = campaign.Worker
	// CampaignWorkerEvent is one machine-readable worker progress record.
	CampaignWorkerEvent = campaign.WorkerEvent
	// CampaignStatus reports one campaign's progress.
	CampaignStatus = campaign.CampaignStatus
	// CampaignLeaseGrant is one leased shard with its full plan coordinates.
	CampaignLeaseGrant = campaign.LeaseGrant
	// CampaignClock abstracts server time for deterministic lease tests.
	CampaignClock = campaign.Clock
)

// NewCampaignServer builds a campaign server with the given options.
func NewCampaignServer(opts CampaignOptions) *CampaignServer {
	return campaign.NewServer(opts)
}

// CampaignHandler builds the server's HTTP API (submit, lease, heartbeat,
// complete, fail, status, incremental results).
func CampaignHandler(s *CampaignServer) http.Handler { return campaign.Handler(s) }

// NewCampaignClient returns a client for the campaign server at base;
// httpClient nil uses http.DefaultClient.
func NewCampaignClient(base string, httpClient *http.Client) *CampaignClient {
	return campaign.NewClient(base, httpClient)
}

// ParseCampaignManifest decodes and validates a manifest strictly (unknown
// fields and trailing data are errors).
func ParseCampaignManifest(data []byte) (CampaignManifest, error) {
	return campaign.ParseManifest(data)
}

// NewCampaign wraps one spec document as a one-grid manifest — the
// `wakeup-bench submit -spec` convenience form (shards 0 = autotune).
func NewCampaign(name, gridID string, doc SpecDoc, shards int) CampaignManifest {
	return campaign.SingleGrid(name, gridID, doc, shards)
}
