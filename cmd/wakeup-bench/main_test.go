package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBench compiles wakeup-bench once per test binary into a temp dir and
// returns its path. Skips when no go toolchain is available (the test execs
// the real binary — that is the point: the subprocess executor and the
// resume path are exercised across true process boundaries).
func buildBench(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("no go toolchain on PATH")
	}
	bin := filepath.Join(t.TempDir(), "wakeup-bench")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// run execs the built binary and returns stdout, failing the test on a
// non-zero exit.
func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr:\n%s", bin, args, err, stderr.String())
	}
	return stdout.String()
}

// TestRunSubcommandResumeByteIdentity is the PR's acceptance criterion, end
// to end across real processes: a 3-shard `wakeup-bench run` with the
// subprocess executor, "interrupted" after one shard (one envelope removed,
// as an atomic writer killed mid-shard would leave it), restarted with
// -resume — which must re-run ONLY the missing shard (verified by the
// store's envelope mtimes and attempt log) — and produce text/CSV/JSON
// byte-identical to the single-process run.
func TestRunSubcommandResumeByteIdentity(t *testing.T) {
	bin := buildBench(t)
	dir := t.TempDir()
	specPath := filepath.Join(dir, "grid.json")
	storeDir := filepath.Join(dir, "runs")

	// A small noisy-channel grid (exercises the channel axis and the
	// listens/energy wire fields across the process boundary).
	spec := run(t, bin, "-algos", "wakeupc,roundrobin", "-ns", "32,64", "-ks", "2,4",
		"-patterns", "staggered:3,simultaneous", "-channels", "noisy:0.1,jam:1",
		"-trials", "5", "-dump-spec")
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}

	whole := map[string]string{}
	for _, format := range []string{"text", "csv", "json"} {
		whole[format] = run(t, bin, "-spec", specPath, "-format", format)
	}

	// Full 3-shard dispatch through the subprocess executor.
	got := run(t, bin, "run", "-spec", specPath, "-shards", "3",
		"-exec", "subprocess:"+bin, "-store", storeDir, "-quiet")
	if got != whole["text"] {
		t.Fatalf("dispatched text differs from single-process run:\n--- got\n%s--- want\n%s", got, whole["text"])
	}

	// The store holds shard envelopes under <fingerprint>/<i>-of-<m>.json.
	fps, err := os.ReadDir(storeDir)
	if err != nil || len(fps) != 1 {
		t.Fatalf("store layout: %v (%v)", fps, err)
	}
	fpDir := filepath.Join(storeDir, fps[0].Name())
	logPath := filepath.Join(fpDir, "attempts.log")
	logBefore, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(logBefore), "\n"); n != 3 {
		t.Fatalf("attempt log after first run has %d lines:\n%s", n, logBefore)
	}
	mtime := func(name string) int64 {
		st, err := os.Stat(filepath.Join(fpDir, name))
		if err != nil {
			t.Fatal(err)
		}
		return st.ModTime().UnixNano()
	}
	keep0, keep2 := mtime("0-of-3.json"), mtime("2-of-3.json")

	// "Interrupt": shard 1's envelope never landed.
	if err := os.Remove(filepath.Join(fpDir, "1-of-3.json")); err != nil {
		t.Fatal(err)
	}

	// Resume re-runs only shard 1 and the merged output is unchanged, in
	// every format.
	for _, format := range []string{"text", "csv", "json"} {
		got := run(t, bin, "run", "-spec", specPath, "-shards", "3",
			"-exec", "subprocess:"+bin, "-store", storeDir, "-resume",
			"-format", format, "-quiet")
		if got != whole[format] {
			t.Fatalf("resumed %s output differs from single-process run", format)
		}
	}

	if mtime("0-of-3.json") != keep0 || mtime("2-of-3.json") != keep2 {
		t.Error("resume rewrote envelopes that were already complete")
	}
	logAfter, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	fresh := strings.TrimPrefix(string(logAfter), string(logBefore))
	// The first resumed run re-ran shard 1 and restored its envelope; the
	// two later format reruns found the store complete and dispatched
	// nothing. Shards 0 and 2 must not appear in the new log lines at all.
	if n := strings.Count(fresh, "\n"); n != 1 {
		t.Fatalf("resume logged %d attempts, want 1 (shard 1 only):\n%s", n, fresh)
	}
	for _, line := range strings.Split(strings.TrimSpace(fresh), "\n") {
		if !strings.Contains(line, "shard 1/3") || !strings.Contains(line, ": ok") {
			t.Errorf("resume attempt line %q is not a clean shard-1 rerun", line)
		}
	}
}

// TestRunSubcommandLocalExecutor: the in-process executor path (no store)
// matches the single-process bytes too.
func TestRunSubcommandLocalExecutor(t *testing.T) {
	bin := buildBench(t)
	dir := t.TempDir()
	specPath := filepath.Join(dir, "grid.json")
	spec := run(t, bin, "-algos", "wakeupc", "-ns", "32", "-ks", "2,4",
		"-patterns", "staggered:3", "-trials", "4", "-dump-spec")
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	whole := run(t, bin, "-spec", specPath, "-format", "csv")
	got := run(t, bin, "run", "-spec", specPath, "-shards", "4",
		"-exec", "local", "-concurrency", "2", "-format", "csv", "-quiet")
	if got != whole {
		t.Fatal("local-executor dispatch differs from single-process run")
	}
}

// TestSpecFromStdin: `-spec -` reads the document from stdin — the form
// remote command templates use (`ssh host wakeup-bench -spec - -shard ...`).
func TestSpecFromStdin(t *testing.T) {
	bin := buildBench(t)
	spec := run(t, bin, "-algos", "wakeupc", "-ns", "32", "-ks", "2",
		"-patterns", "simultaneous", "-trials", "3", "-dump-spec")

	cmd := exec.Command(bin, "-spec", "-", "-shard", "0/2")
	cmd.Stdin = strings.NewReader(spec)
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("%v", err)
	}
	if !strings.Contains(string(out), `"shard": 0`) || !strings.Contains(string(out), `"shards": 2`) {
		t.Fatalf("stdin-spec shard did not emit an envelope:\n%s", out)
	}
}

// TestRunSubcommandProfiles: -cpuprofile/-memprofile land complete pprof
// files (gzip magic, non-empty) next to -out, with no leftover temp files.
func TestRunSubcommandProfiles(t *testing.T) {
	bin := buildBench(t)
	dir := t.TempDir()
	specPath := filepath.Join(dir, "grid.json")
	spec := run(t, bin, "-algos", "wakeupc", "-ns", "32", "-ks", "2",
		"-patterns", "simultaneous", "-trials", "3", "-dump-spec")
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	run(t, bin, "run", "-spec", specPath, "-shards", "2", "-quiet",
		"-out", filepath.Join(dir, "out.txt"), "-cpuprofile", cpu, "-memprofile", mem)
	for _, path := range []string{cpu, mem} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		// pprof profiles are gzip-compressed protobufs.
		if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
			t.Errorf("%s is not a gzip-compressed profile (len %d)", path, len(data))
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s after a clean exit", e.Name())
		}
	}
}
