package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nsmac/sweep"
)

// runServe implements the "serve" subcommand: a long-lived campaign server
// owning the shard queue, speaking the HTTP/JSON lease protocol.
func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address")
		storeDir    = fs.String("store", "", "persist shard envelopes (and the worker-tagged attempt log) under this directory; campaigns resume from stored envelopes")
		lease       = fs.Duration("lease", 30*time.Second, "lease visibility timeout: a worker that stops heartbeating for this long loses its shard")
		stealAfter  = fs.Duration("steal-after", 0, "minimum lease age before a straggler's shard is offered to a second worker (0 = half the lease timeout)")
		maxAttempts = fs.Int("max-attempts", 5, "lease grants per shard before its grid fails")
		defShards   = fs.Int("default-shards", 4, "shard count for autotuned grids before any wall-clock observation")
		maxShards   = fs.Int("max-shards", 64, "autotuned shard count cap")
		targetTime  = fs.Duration("target-shard-time", 5*time.Second, "autotuner's per-shard wall-clock target")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: wakeup-bench serve [-addr host:port] [-store dir] [-lease 30s] ...\n")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() > 0 {
		fail("serve: unexpected arguments %v", fs.Args())
	}

	opts := sweep.CampaignOptions{
		LeaseTimeout:    *lease,
		StealAfter:      *stealAfter,
		MaxAttempts:     *maxAttempts,
		DefaultShards:   *defShards,
		MaxShards:       *maxShards,
		TargetShardTime: *targetTime,
	}
	if *storeDir != "" {
		opts.Store = &sweep.RunStore{Dir: *storeDir}
	}
	srv := sweep.NewCampaignServer(opts)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("serve: %v", err)
	}
	// The bound address goes to stderr in a greppable form so scripts (and
	// the CI smoke job) can use -addr 127.0.0.1:0 and discover the port.
	fmt.Fprintf(os.Stderr, "wakeup-bench: serving campaigns on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: sweep.CampaignHandler(srv)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
	}()
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail("serve: %v", err)
	}
}

// runWork implements the "work" subcommand: a pull-based lease worker that
// runs campaign shards through an executor and heartbeats the server.
func runWork(args []string) {
	fs := flag.NewFlagSet("work", flag.ExitOnError)
	var (
		server    = fs.String("server", "", "campaign server base URL (required), e.g. http://127.0.0.1:8080")
		id        = fs.String("id", "", "worker identity in leases and the attempt log (default: <hostname>-<pid>)")
		execSpec  = fs.String("exec", "local", "executor: \"local\", \"subprocess[:binary]\", or \"cmd:<template>\" (same grammar as `run -exec`)")
		workers   = fs.Int("workers", 0, "per-shard trial workers for local/subprocess executors (0 = GOMAXPROCS)")
		batch     = fs.Int("batch", 0, "trials per work item (0 = auto); tunes scheduling overhead, never output")
		poll      = fs.Duration("poll", 500*time.Millisecond, "idle sleep between empty lease requests")
		maxLeases = fs.Int("max-leases", 0, "exit after this many leases (0 = run until interrupted)")
		hold      = fs.Duration("hold", 0, "pause between lease grant and shard execution (fault-injection hook for kill-mid-lease tests)")
		progress  = fs.String("progress", "text", "progress on stderr: text | json (one event per line) | none")
	)
	prof := addProfileFlags(fs)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: wakeup-bench work -server URL [-id name] [-exec local|subprocess[:bin]|cmd:...] [-progress text|json|none] ...\n")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() > 0 {
		fail("work: unexpected arguments %v", fs.Args())
	}
	if *server == "" {
		fail("work: -server is required")
	}
	if *id == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	defer prof.start()()

	w := &sweep.CampaignWorker{
		Client:    sweep.NewCampaignClient(*server, nil),
		ID:        *id,
		Exec:      buildExecutor(*execSpec, *workers, *batch),
		Poll:      *poll,
		MaxLeases: *maxLeases,
		Hold:      *hold,
		OnEvent:   workerProgress(*progress),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := w.Run(ctx)
	if err != nil && !errors.Is(err, context.Canceled) {
		fail("work: %v", err)
	}
}

// workerProgress builds the worker's stderr progress hook for a -progress
// mode: human lines, one JSON event per line, or nothing.
func workerProgress(mode string) func(sweep.CampaignWorkerEvent) {
	switch mode {
	case "none":
		return nil
	case "json":
		return func(ev sweep.CampaignWorkerEvent) { emitJSONEvent(ev) }
	case "", "text":
		return func(ev sweep.CampaignWorkerEvent) {
			switch ev.Event {
			case "lease":
				verb := "leased"
				if ev.Steal {
					verb = "stealing"
				}
				fmt.Fprintf(os.Stderr, "wakeup-bench: %s shard %d/%d of %s/%s (attempt %d)\n",
					verb, ev.Shard, ev.Shards, ev.Campaign, ev.Grid, ev.Attempt)
			case "complete":
				fmt.Fprintf(os.Stderr, "wakeup-bench: shard %d/%d of %s/%s done\n",
					ev.Shard, ev.Shards, ev.Campaign, ev.Grid)
			case "duplicate":
				fmt.Fprintf(os.Stderr, "wakeup-bench: shard %d/%d of %s/%s already completed elsewhere\n",
					ev.Shard, ev.Shards, ev.Campaign, ev.Grid)
			case "heartbeat_lost":
				fmt.Fprintf(os.Stderr, "wakeup-bench: lost lease on shard %d/%d of %s/%s\n",
					ev.Shard, ev.Shards, ev.Campaign, ev.Grid)
			case "fail":
				fmt.Fprintf(os.Stderr, "wakeup-bench: shard %d/%d of %s/%s failed: %s\n",
					ev.Shard, ev.Shards, ev.Campaign, ev.Grid, ev.Error)
			case "exit":
				fmt.Fprintf(os.Stderr, "wakeup-bench: worker %s exiting after %d leases\n", ev.Worker, ev.Leases)
			}
		}
	default:
		fail("work: unknown -progress %q (have text, json, none)", mode)
		panic("unreachable")
	}
}

// runSubmit implements the "submit" subcommand: ship a campaign manifest
// (or a single spec document wrapped as one) and print the campaign ID.
func runSubmit(args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		server   = fs.String("server", "", "campaign server base URL (required)")
		manifest = fs.String("manifest", "", "campaign manifest (JSON; \"-\" reads stdin): {\"name\": ..., \"grids\": [{\"id\": ..., \"spec\": {...}, \"shards\": n}, ...]}")
		specFile = fs.String("spec", "", "single grid spec document to wrap as a one-grid campaign (JSON; \"-\" reads stdin)")
		name     = fs.String("name", "", "campaign name for -spec submissions")
		gridID   = fs.String("grid-id", "grid", "grid id for -spec submissions")
		shards   = fs.Int("shards", 0, "shard count for -spec submissions (0 = server autotunes from observed wall-clock)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: wakeup-bench submit -server URL (-manifest campaign.json | -spec grid.json [-name x] [-grid-id g] [-shards n])\n")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() > 0 {
		fail("submit: unexpected arguments %v", fs.Args())
	}
	if *server == "" {
		fail("submit: -server is required")
	}
	if (*manifest == "") == (*specFile == "") {
		fail("submit: pass exactly one of -manifest or -spec")
	}

	var m sweep.CampaignManifest
	if *manifest != "" {
		data := readInput(*manifest)
		var err error
		m, err = sweep.ParseCampaignManifest(data)
		if err != nil {
			fail("submit: %v", err)
		}
	} else {
		m = sweep.NewCampaign(*name, *gridID, readSpecDoc(*specFile), *shards)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	id, err := sweep.NewCampaignClient(*server, nil).Submit(ctx, m)
	if err != nil {
		fail("submit: %v", err)
	}
	fmt.Println(id)
}

// runStatus implements the "status" subcommand: campaign progress, or — with
// -campaign and -grid — the grid's merged results so far (partial results
// are labeled on stderr; stdout stays byte-identical to the one-process run
// once the grid completes).
func runStatus(args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	var (
		server     = fs.String("server", "", "campaign server base URL (required)")
		campaignID = fs.String("campaign", "", "campaign to report (default: all campaigns)")
		gridID     = fs.String("grid", "", "fetch this grid's merged results instead of status (requires -campaign)")
		format     = fs.String("format", "", "output format: for -grid results text | csv | json (default text); for status text | json (default text)")
		outFile    = fs.String("out", "", "write output to this file instead of stdout")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: wakeup-bench status -server URL [-campaign id [-grid g]] [-format ...] [-out file]\n")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() > 0 {
		fail("status: unexpected arguments %v", fs.Args())
	}
	if *server == "" {
		fail("status: -server is required")
	}
	if *gridID != "" && *campaignID == "" {
		fail("status: -grid needs -campaign")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cl := sweep.NewCampaignClient(*server, nil)

	if *gridID != "" {
		out, complete, done, total, err := cl.Results(ctx, *campaignID, *gridID, *format)
		if err != nil {
			fail("status: %v", err)
		}
		if !complete {
			fmt.Fprintf(os.Stderr, "wakeup-bench: partial results: %d/%d shards merged\n", done, total)
		}
		emit(*outFile, []byte(out))
		return
	}

	var sts []*sweep.CampaignStatus
	if *campaignID != "" {
		st, err := cl.Status(ctx, *campaignID)
		if err != nil {
			fail("status: %v", err)
		}
		sts = []*sweep.CampaignStatus{st}
	} else {
		var err error
		sts, err = cl.Campaigns(ctx)
		if err != nil {
			fail("status: %v", err)
		}
	}

	switch *format {
	case "json":
		data, err := json.MarshalIndent(sts, "", "  ")
		if err != nil {
			fail("status: %v", err)
		}
		emit(*outFile, append(data, '\n'))
	case "", "text":
		var buf []byte
		for _, st := range sts {
			state := "running"
			switch {
			case st.Failed:
				state = "FAILED"
			case st.Done:
				state = "done"
			}
			buf = append(buf, fmt.Sprintf("%s  %q  %s\n", st.ID, st.Name, state)...)
			for _, g := range st.Grids {
				line := fmt.Sprintf("  grid %-12s %d/%d shards done, %d in flight, %d pending (%d attempts",
					g.ID, g.Done, g.Shards, g.InFlight, g.Pending, g.Attempts)
				if g.Autotuned {
					line += ", autotuned"
				}
				line += ")"
				if g.Failed != "" {
					line += " FAILED: " + g.Failed
				}
				if g.StoreError != "" {
					line += " store-error: " + g.StoreError
				}
				buf = append(buf, (line + "\n")...)
			}
		}
		emit(*outFile, buf)
	default:
		fail("status: unknown -format %q (have text, json)", *format)
	}
}

// readInput reads a file argument, with "-" meaning stdin.
func readInput(path string) []byte {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		fail("%v", err)
	}
	return data
}

// dispatchEvent is the JSON line `run -progress json` emits per driver
// event, mirroring the worker's event stream shape.
type dispatchEvent struct {
	Event   string `json:"event"` // "cached", "start", "done", "retry", "failed"
	Shard   int    `json:"shard"`
	Shards  int    `json:"shards"`
	Attempt int    `json:"attempt,omitempty"`
	Error   string `json:"error,omitempty"`
}

// dispatchProgress builds the driver's stderr progress hook for a
// -progress mode.
func dispatchProgress(mode string) func(sweep.Event) {
	switch mode {
	case "none":
		return nil
	case "json":
		return func(ev sweep.Event) {
			out := dispatchEvent{Shard: ev.Shard, Shards: ev.Shards, Attempt: ev.Attempt}
			switch ev.State {
			case sweep.EventCached:
				out.Event = "cached"
			case sweep.EventStart:
				out.Event = "start"
			case sweep.EventDone:
				out.Event = "done"
			case sweep.EventRetry:
				out.Event = "retry"
			case sweep.EventFailed:
				out.Event = "failed"
			}
			if ev.Err != nil {
				out.Error = ev.Err.Error()
			}
			emitJSONEvent(out)
		}
	case "", "text":
		return func(ev sweep.Event) {
			switch ev.State {
			case sweep.EventCached:
				fmt.Fprintf(os.Stderr, "wakeup-bench: shard %d/%d already in store, skipping\n", ev.Shard, ev.Shards)
			case sweep.EventStart:
				fmt.Fprintf(os.Stderr, "wakeup-bench: shard %d/%d attempt %d...\n", ev.Shard, ev.Shards, ev.Attempt)
			case sweep.EventDone:
				fmt.Fprintf(os.Stderr, "wakeup-bench: shard %d/%d done\n", ev.Shard, ev.Shards)
			case sweep.EventRetry:
				fmt.Fprintf(os.Stderr, "wakeup-bench: shard %d/%d attempt %d failed (%v), retrying\n", ev.Shard, ev.Shards, ev.Attempt, ev.Err)
			case sweep.EventFailed:
				fmt.Fprintf(os.Stderr, "wakeup-bench: shard %d/%d failed after %d attempts: %v\n", ev.Shard, ev.Shards, ev.Attempt, ev.Err)
			}
		}
	default:
		fail("run: unknown -progress %q (have text, json, none)", mode)
		panic("unreachable")
	}
}

// emitJSONEvent writes one JSON event per line on stderr — the
// machine-readable progress stream behind `-progress json`.
func emitJSONEvent(ev any) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	os.Stderr.Write(append(data, '\n'))
}
