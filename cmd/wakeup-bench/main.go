// Command wakeup-bench regenerates every experiment table in DESIGN.md §5 /
// EXPERIMENTS.md, or runs a custom sweep grid. Each table reproduces one
// theorem-backed claim of the paper as a measured shape; a custom grid sweeps
// algorithms × wake patterns × {n, k} axes through internal/sweep's sharded
// orchestrator.
//
// Examples:
//
//	wakeup-bench                           # full sweeps (minutes)
//	wakeup-bench -quick                    # CI-sized sweeps (seconds)
//	wakeup-bench -only T4,T6 -format csv   # a subset, as CSV
//	wakeup-bench -algos wakeupc,roundrobin -ns 256,1024 -ks 2,8,32 \
//	    -patterns staggered:7,simultaneous -trials 10 -format json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nsmac/internal/experiments"
	"nsmac/internal/sweep"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "CI-sized sweeps")
		trials   = flag.Int("trials", 0, "override per-cell trial count")
		seed     = flag.Uint64("seed", 20130527, "experiment seed (default: IPDPS 2013 conference date)")
		only     = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		workers  = flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		batch    = flag.Int("batch", 0, "trials per work item (0 = auto); tunes scheduling overhead, never output")
		format   = flag.String("format", "text", "output format: text | csv | json")
		algos    = flag.String("algos", "", "custom grid: comma-separated algorithms (or \"all\"); selecting this skips the experiment tables")
		ns       = flag.String("ns", "256,1024", "custom grid: universe sizes")
		ks       = flag.String("ks", "1,4,16,64", "custom grid: awake-station counts")
		patterns = flag.String("patterns", "suite", "custom grid: wake patterns (simultaneous, staggered[:gap], uniform[:width], bursts[:gap], spoiler, swap[:1=greedy], suite)")
	)
	flag.Parse()

	if *algos != "" {
		if *only != "" || *quick {
			fail("-algos selects a custom grid; it cannot be combined with -only or -quick")
		}
		runGrid(*algos, *ns, *ks, *patterns, *trials, *seed, *workers, *batch, *format)
		return
	}

	cfg := experiments.Config{Quick: *quick, Trials: *trials, Seed: *seed, Workers: *workers, Batch: *batch}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Lookup(id)
			if !ok {
				fail("unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}

	text := *format == "text" || *format == ""
	if text {
		mode := "full"
		if *quick {
			mode = "quick"
		}
		fmt.Printf("# nsmac experiment suite — mode=%s seed=%d\n", mode, *seed)
		fmt.Printf("# reproducing De Marco & Kowalski (IPDPS 2013); see DESIGN.md §5\n\n")
	}

	// JSON output must stay one parseable document, so tables collect into
	// a single array instead of streaming.
	if *format == "json" {
		tables := make([]*experiments.Table, len(selected))
		for i, e := range selected {
			tables[i] = e.Run(cfg)
		}
		out, err := experiments.TablesJSON(tables)
		if err != nil {
			fail("%v", err)
		}
		fmt.Println(string(out))
		return
	}

	for _, e := range selected {
		start := time.Now()
		tbl := e.Run(cfg)
		out, err := tbl.Emit(*format)
		if err != nil {
			fail("%v", err)
		}
		fmt.Print(out)
		if text {
			fmt.Printf("   (%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		}
	}
}

// runGrid executes a custom sweep spec assembled from the axis flags.
func runGrid(algos, ns, ks, patterns string, trials int, seed uint64, workers, batch int, format string) {
	cases, err := sweep.CasesByName(algos)
	if err != nil {
		fail("%v", err)
	}
	gens, err := sweep.ParsePatterns(patterns)
	if err != nil {
		fail("%v", err)
	}
	nAxis, err := sweep.ParseInts(ns)
	if err != nil {
		fail("-ns: %v", err)
	}
	kAxis, err := sweep.ParseInts(ks)
	if err != nil {
		fail("-ks: %v", err)
	}
	if trials <= 0 {
		trials = 8
	}
	spec := sweep.Spec{
		Name:     "custom",
		Cases:    cases,
		Patterns: gens,
		Ns:       nAxis,
		Ks:       kAxis,
		Trials:   trials,
		Seed:     seed,
		Workers:  workers,
		Batch:    batch,
	}
	warnSkipped(spec)
	res, err := spec.Execute()
	if err != nil {
		fail("%v", err)
	}
	out, err := res.Render(format)
	if err != nil {
		fail("%v", err)
	}
	fmt.Print(out)
}

// warnSkipped reports requested grid cells the spec drops (k > n, or k
// beyond an algorithm's feasible regime), so a smaller-than-requested sweep
// never passes silently.
func warnSkipped(spec sweep.Spec) {
	for _, s := range spec.Skipped() {
		fmt.Fprintf(os.Stderr, "wakeup-bench: skipping cell %s\n", s)
	}
}

func fail(formatStr string, args ...any) {
	fmt.Fprintf(os.Stderr, "wakeup-bench: "+formatStr+"\n", args...)
	os.Exit(1)
}
