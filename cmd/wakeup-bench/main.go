// Command wakeup-bench regenerates every experiment table (see README.md),
// or runs a sweep grid — declared either by axis flags or by a serializable
// spec document — optionally as one shard of a multi-process plan.
//
// Examples:
//
//	wakeup-bench                           # full experiment suite (minutes)
//	wakeup-bench -quick                    # CI-sized suite (seconds)
//	wakeup-bench -only T4,T6 -format csv   # a subset, as CSV
//	wakeup-bench -algos wakeupc,roundrobin -ns 256,1024 -ks 2,8,32 \
//	    -patterns staggered:7,simultaneous -trials 10 -format json
//	wakeup-bench -algos wakeupc -channels none,noisy:0.05 -trials 20
//	    # channel models as a grid axis (adds the energy column)
//
// Spec documents make a grid portable across processes and machines:
//
//	wakeup-bench -algos all -trials 20 -dump-spec > grid.json   # flags → doc
//	wakeup-bench -spec grid.json                                # doc → run
//	wakeup-bench -spec grid.json -shard 0/3 -out s0.json        # shard 0 of 3
//	wakeup-bench -spec grid.json -shard 1/3 -out s1.json
//	wakeup-bench -spec grid.json -shard 2/3 -out s2.json
//	wakeup-bench merge s0.json s1.json s2.json    # == the unsharded run
//
// The "run" subcommand drives the whole shard plan itself — dispatching
// shards through a pluggable executor with retries, bounded concurrency and
// a resumable on-disk store — and prints the merged result, byte-identical
// to the unsharded run:
//
//	wakeup-bench run -spec grid.json -shards 3 -exec subprocess -store runs
//	# ... killed mid-run? re-run only the missing shards:
//	wakeup-bench run -spec grid.json -shards 3 -exec subprocess -store runs -resume
//	wakeup-bench run -spec grid.json -shards 4 \
//	    -exec 'cmd:ssh host wakeup-bench -spec - -shard {i}/{m}'
//
// Sweep-as-a-service flips the driver inside out: a long-lived server owns
// the shard queue and pull-based lease workers (any machine that can reach
// it) do the computing — with heartbeats, lease expiry, work stealing and
// shard autotuning. Merged results stream while shards are in flight and
// finish byte-identical to the one-process run:
//
//	wakeup-bench serve -addr :8080 -store runs &
//	wakeup-bench submit -server http://localhost:8080 -spec grid.json   # → c1
//	wakeup-bench work -server http://localhost:8080 &                   # × N workers
//	wakeup-bench status -server http://localhost:8080 -campaign c1
//	wakeup-bench status -server http://localhost:8080 -campaign c1 -grid grid
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nsmac/internal/experiments"
	"nsmac/sweep"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "merge":
			runMerge(os.Args[2:])
			return
		case "run":
			runDispatch(os.Args[2:])
			return
		case "serve":
			runServe(os.Args[2:])
			return
		case "work":
			runWork(os.Args[2:])
			return
		case "submit":
			runSubmit(os.Args[2:])
			return
		case "status":
			runStatus(os.Args[2:])
			return
		}
	}

	var (
		quick    = flag.Bool("quick", false, "CI-sized sweeps")
		trials   = flag.Int("trials", 0, "override per-cell trial count")
		seed     = flag.Uint64("seed", 20130527, "experiment seed (default: IPDPS 2013 conference date)")
		only     = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		workers  = flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		batch    = flag.Int("batch", 0, "trials per work item (0 = auto); tunes scheduling overhead, never output")
		format   = flag.String("format", "text", "output format: text | csv | json")
		algos    = flag.String("algos", "", "custom grid: comma-separated algorithm entries (or \"all\"); selecting this skips the experiment tables")
		ns       = flag.String("ns", "256,1024", "custom grid: universe sizes")
		ks       = flag.String("ks", "1,4,16,64", "custom grid: awake-station counts")
		patterns = flag.String("patterns", "suite", "custom grid: wake pattern entries (simultaneous, staggered[:gap], uniform[:width], bursts[:gap], spoiler, swap[:1=greedy], suite; @slot shifts the start)")
		channels = flag.String("channels", "", "custom grid: channel-model entries (none, cd, sender_cd, ack, noisy:<p>, jam:<q>); empty keeps the paper channel and omits the channel axis")
		specFile = flag.String("spec", "", "run the sweep described by this spec document (JSON; \"-\" reads stdin) instead of flag axes or experiment tables")
		shardArg = flag.String("shard", "", "run only shard i of m of the grid, as \"i/m\", and emit a shard envelope (requires -spec or -algos)")
		outFile  = flag.String("out", "", "write output to this file instead of stdout")
		dumpSpec = flag.Bool("dump-spec", false, "emit the selected grid as a reusable spec document and exit (requires -spec or -algos)")
		noKernel = flag.Bool("no-kernel", false, "force the slot-by-slot engine for every cell, bypassing the bitset slot kernel (which otherwise serves oblivious cells on every built-in channel, noisy/jam included; output is byte-identical either way — useful for differential checks and timing)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fail("unexpected arguments %v (did you mean the \"merge\" subcommand?)", flag.Args())
	}

	gridMode := *specFile != "" || *algos != ""
	if gridMode && (*only != "" || *quick) {
		fail("-spec/-algos select a grid run; they cannot be combined with -only or -quick")
	}
	if (*shardArg != "" || *dumpSpec) && !gridMode {
		fail("-shard and -dump-spec need a grid: pass -spec or -algos")
	}
	if *specFile != "" && *algos != "" {
		fail("-spec and -algos both describe the grid; pick one")
	}
	if *specFile != "" {
		// The document pins the whole grid; explicitly-set axis flags would
		// be silently ignored, so refuse them outright.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "ns", "ks", "patterns", "channels", "trials", "seed":
				fail("-spec pins the grid; -%s cannot override it (edit the document instead)", f.Name)
			}
		})
	}

	if gridMode {
		spec := buildSpec(*specFile, *algos, *ns, *ks, *patterns, *channels, *trials, *seed)
		spec.Workers, spec.Batch = *workers, *batch
		spec.DisableKernel = *noKernel
		runGrid(spec, *shardArg, *dumpSpec, *format, *outFile)
		return
	}

	cfg := experiments.Config{Quick: *quick, Trials: *trials, Seed: *seed, Workers: *workers, Batch: *batch}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Lookup(id)
			if !ok {
				fail("unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}

	text := *format == "text" || *format == ""
	if text {
		mode := "full"
		if *quick {
			mode = "quick"
		}
		fmt.Printf("# nsmac experiment suite — mode=%s seed=%d\n", mode, *seed)
		fmt.Printf("# reproducing De Marco & Kowalski (IPDPS 2013); see README.md\n\n")
	}

	// JSON output must stay one parseable document, so tables collect into
	// a single array instead of streaming.
	if *format == "json" {
		tables := make([]*experiments.Table, len(selected))
		for i, e := range selected {
			tables[i] = e.Run(cfg)
		}
		out, err := experiments.TablesJSON(tables)
		if err != nil {
			fail("%v", err)
		}
		fmt.Println(string(out))
		return
	}

	for _, e := range selected {
		//nsmac:nondeterminism-ok run-progress timing, reported on stderr only
		start := time.Now()
		tbl := e.Run(cfg)
		out, err := tbl.Emit(*format)
		if err != nil {
			fail("%v", err)
		}
		fmt.Print(out)
		if text {
			// Timing goes to stderr: stdout carries only the reproducible
			// tables, so `wakeup-bench > out.txt` diffs byte-identically
			// across runs.
			//nsmac:nondeterminism-ok wall-clock duration prints to stderr, never into a table
			fmt.Fprintf(os.Stderr, "   (%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		}
	}
}

// readSpecDoc loads and decodes a spec document from a file, or from stdin
// when the path is "-" (the form remote executors use to stream a grid to a
// shard worker over ssh).
func readSpecDoc(path string) sweep.SpecDoc {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		fail("%v", err)
	}
	doc, err := sweep.ParseSpecDoc(data)
	if err != nil {
		fail("%v", err)
	}
	return doc
}

// buildSpec assembles the sweep spec from a spec document file or from the
// axis flags.
func buildSpec(specFile, algos, ns, ks, patterns, channels string, trials int, seed uint64) sweep.Spec {
	if specFile != "" {
		spec, err := readSpecDoc(specFile).Resolve()
		if err != nil {
			fail("%v", err)
		}
		return spec
	}

	cases, err := sweep.CasesByName(algos)
	if err != nil {
		fail("%v", err)
	}
	gens, err := sweep.ParsePatterns(patterns)
	if err != nil {
		fail("%v", err)
	}
	chAxis, err := sweep.ChannelsByName(channels)
	if err != nil {
		fail("-channels: %v", err)
	}
	nAxis, err := sweep.ParseInts(ns)
	if err != nil {
		fail("-ns: %v", err)
	}
	kAxis, err := sweep.ParseInts(ks)
	if err != nil {
		fail("-ks: %v", err)
	}
	if trials <= 0 {
		trials = 8
	}
	return sweep.Spec{
		Name:     "custom",
		Cases:    cases,
		Patterns: gens,
		Channels: chAxis,
		Ns:       nAxis,
		Ks:       kAxis,
		Trials:   trials,
		Seed:     seed,
	}
}

// runGrid executes the grid modes: dump the spec document, run one shard, or
// run (and render) the whole sweep.
func runGrid(spec sweep.Spec, shardArg string, dumpSpec bool, format, outFile string) {
	if dumpSpec {
		doc, err := spec.Doc()
		if err != nil {
			fail("%v", err)
		}
		data, err := doc.Encode()
		if err != nil {
			fail("%v", err)
		}
		emit(outFile, data)
		return
	}

	// One enumeration serves both the skip report and the executable grid —
	// a shrunken grid (k > n, capped k) is never silent.
	g, skipped, err := spec.Compile()
	if err != nil {
		fail("%v", err)
	}
	for _, s := range skipped {
		fmt.Fprintf(os.Stderr, "wakeup-bench: skipping cell %s\n", s)
	}

	if shardArg != "" {
		index, count, err := parseShard(shardArg)
		if err != nil {
			fail("%v", err)
		}
		sr, err := g.RunShard(index, count)
		if err != nil {
			fail("%v", err)
		}
		data, err := sr.Encode()
		if err != nil {
			fail("%v", err)
		}
		emit(outFile, data)
		return
	}

	res, err := g.Execute()
	if err != nil {
		fail("%v", err)
	}
	out, err := res.Render(format)
	if err != nil {
		fail("%v", err)
	}
	emit(outFile, []byte(out))
}

// runMerge implements the "merge" subcommand: reassemble shard envelopes
// into the full sweep and render it.
func runMerge(args []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	format := fs.String("format", "text", "output format: text | csv | json")
	outFile := fs.String("out", "", "write output to this file instead of stdout")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: wakeup-bench merge [-format text|csv|json] [-out file] shard.json...\n")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() == 0 {
		fail("merge needs at least one shard file")
	}
	shards := make([]*sweep.ShardResult, 0, fs.NArg())
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fail("%v", err)
		}
		sr, err := sweep.DecodeShardResult(data)
		if err != nil {
			fail("%s: %v", path, err)
		}
		shards = append(shards, sr)
	}
	res, err := sweep.Merge(shards...)
	if err != nil {
		fail("%v", err)
	}
	out, err := res.Render(*format)
	if err != nil {
		fail("%v", err)
	}
	emit(*outFile, []byte(out))
}

// runDispatch implements the "run" subcommand: execute a spec document's
// whole m-shard plan through a pluggable executor — with retries, bounded
// concurrency and an optional resumable envelope store — and render the
// merged result, byte-identical to the unsharded run.
func runDispatch(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		specFile = fs.String("spec", "", "grid spec document (JSON); \"-\" reads stdin (required)")
		shards   = fs.Int("shards", 0, "shard count m of the trial-striped plan (required, >= 1)")
		execSpec = fs.String("exec", "local", "executor: \"local\" (in-process), \"subprocess[:binary]\" (one process per shard; default binary: this one), or \"cmd:<template>\" (whitespace-split argv with {spec}/{i}/{m}/{fingerprint} substituted; envelope read from stdout, spec piped to stdin unless {spec} is used)")
		storeDir = fs.String("store", "", "persist shard envelopes under this directory (<dir>/<fingerprint>/<i>-of-<m>.json); enables -resume")
		resume   = fs.Bool("resume", false, "skip shards whose stored envelope is already complete and valid; re-run only missing or corrupt ones (requires -store)")
		retries  = fs.Int("retries", 3, "dispatch attempt cap per shard")
		conc     = fs.Int("concurrency", 1, "shards in flight at once")
		workers  = fs.Int("workers", 0, "per-shard trial workers for local/subprocess executors (0 = GOMAXPROCS)")
		batch    = fs.Int("batch", 0, "trials per work item (0 = auto); tunes scheduling overhead, never output")
		format   = fs.String("format", "text", "output format: text | csv | json")
		outFile  = fs.String("out", "", "write merged output to this file instead of stdout")
		progress = fs.String("progress", "text", "per-shard progress on stderr: text | json (one event per line) | none")
		quiet    = fs.Bool("quiet", false, "shorthand for -progress none")
	)
	prof := addProfileFlags(fs)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: wakeup-bench run -spec grid.json -shards m [-exec local|subprocess[:bin]|cmd:...] [-store dir [-resume]] ...\n")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() > 0 {
		fail("run: unexpected arguments %v", fs.Args())
	}
	if *specFile == "" {
		fail("run: -spec is required")
	}
	if *shards < 1 {
		fail("run: -shards must be >= 1")
	}
	if *retries < 1 {
		fail("run: -retries must be >= 1 (1 = no retry, fail after the first attempt)")
	}
	if *resume && *storeDir == "" {
		fail("run: -resume requires -store")
	}
	switch *format {
	case "", "text", "csv", "json":
		// Validated before any shard is dispatched: a -format typo must not
		// cost the whole run's compute.
	default:
		fail("run: unknown format %q (have text, csv, json)", *format)
	}

	defer prof.start()()

	doc := readSpecDoc(*specFile)
	// Surface the dropped-cell report (and any resolve error) before any
	// shard is dispatched.
	_, skipped, err := sweep.PlanShards(doc, *shards)
	if err != nil {
		fail("%v", err)
	}
	for _, s := range skipped {
		fmt.Fprintf(os.Stderr, "wakeup-bench: skipping cell %s\n", s)
	}

	d := &sweep.Driver{
		Exec:        buildExecutor(*execSpec, *workers, *batch),
		Resume:      *resume,
		MaxAttempts: *retries,
		Concurrency: *conc,
	}
	if *storeDir != "" {
		d.Store = &sweep.RunStore{Dir: *storeDir}
	}
	if *quiet {
		*progress = "none"
	}
	d.Progress = dispatchProgress(*progress)

	// SIGINT/SIGTERM cancel the dispatch context: in-flight subprocess
	// shards are killed, and — with a store — every completed envelope is
	// already on disk for a later -resume. Once the context is canceled the
	// signal handler is released, so a second ^C terminates the process the
	// default way (the local executor cannot abort a shard mid-grid).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	res, err := d.Run(ctx, doc, *shards)
	if err != nil {
		fail("%v", err)
	}
	out, err := res.Render(*format)
	if err != nil {
		fail("%v", err)
	}
	emit(*outFile, []byte(out))
}

// buildExecutor resolves the -exec flag grammar into an executor.
func buildExecutor(spec string, workers, batch int) sweep.Executor {
	switch {
	case spec == "local":
		return sweep.Local{Workers: workers, Batch: batch}
	case spec == "subprocess" || strings.HasPrefix(spec, "subprocess:"):
		sub := sweep.Subprocess{Stderr: os.Stderr}
		if rest, ok := strings.CutPrefix(spec, "subprocess:"); ok {
			if rest == "" {
				fail("run: -exec subprocess: has an empty binary path")
			}
			sub.Binary = rest
		}
		if workers != 0 {
			sub.Args = append(sub.Args, "-workers", strconv.Itoa(workers))
		}
		if batch != 0 {
			sub.Args = append(sub.Args, "-batch", strconv.Itoa(batch))
		}
		return sub
	case strings.HasPrefix(spec, "cmd:"):
		argv := strings.Fields(strings.TrimPrefix(spec, "cmd:"))
		if len(argv) == 0 {
			fail("run: -exec cmd: has an empty template")
		}
		return sweep.Command{Argv: argv, Stderr: os.Stderr}
	default:
		fail("run: unknown -exec %q (have local, subprocess[:binary], cmd:<template>)", spec)
		panic("unreachable")
	}
}

// parseShard parses the "-shard i/m" plan coordinate. Both halves must be
// clean integers — trailing garbage would silently select a different plan.
func parseShard(s string) (index, count int, err error) {
	iStr, mStr, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("bad -shard %q, want \"i/m\" (e.g. 0/3)", s)
	}
	index, err1 := strconv.Atoi(iStr)
	count, err2 := strconv.Atoi(mStr)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("bad -shard %q, want \"i/m\" (e.g. 0/3)", s)
	}
	if count < 1 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("bad -shard %q: need 0 <= i < m", s)
	}
	return index, count, nil
}

// emit writes output to the -out file, or stdout when none was given. File
// writes are atomic (temp file + rename in the target directory), so a
// killed shard can never leave a truncated envelope behind for a later
// merge or -resume to trip over.
func emit(outFile string, data []byte) {
	if outFile == "" {
		os.Stdout.Write(data)
		return
	}
	if err := sweep.WriteFileAtomic(outFile, data, 0o644); err != nil {
		fail("%v", err)
	}
}

func fail(formatStr string, args ...any) {
	fmt.Fprintf(os.Stderr, "wakeup-bench: "+formatStr+"\n", args...)
	os.Exit(1)
}
