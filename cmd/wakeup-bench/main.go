// Command wakeup-bench regenerates every experiment table in DESIGN.md §5 /
// EXPERIMENTS.md. Each table reproduces one theorem-backed claim of the
// paper as a measured shape.
//
// Examples:
//
//	wakeup-bench                 # full sweeps (minutes)
//	wakeup-bench -quick          # CI-sized sweeps (seconds)
//	wakeup-bench -only T4,T6     # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nsmac/internal/experiments"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "CI-sized sweeps")
		trials  = flag.Int("trials", 0, "override per-cell trial count")
		seed    = flag.Uint64("seed", 20130527, "experiment seed (default: IPDPS 2013 conference date)")
		only    = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		workers = flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	cfg := experiments.Config{Quick: *quick, Trials: *trials, Seed: *seed, Workers: *workers}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "wakeup-bench: unknown experiment %q\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	mode := "full"
	if *quick {
		mode = "quick"
	}
	fmt.Printf("# nsmac experiment suite — mode=%s seed=%d\n", mode, *seed)
	fmt.Printf("# reproducing De Marco & Kowalski (IPDPS 2013); see DESIGN.md §5\n\n")

	for _, e := range selected {
		start := time.Now()
		tbl := e.Run(cfg)
		fmt.Print(tbl.Render())
		fmt.Printf("   (%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
