package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"nsmac/sweep"
)

// profileFlags registers the pprof output flags shared by the run and work
// subcommands.
type profileFlags struct {
	cpu *string
	mem *string
}

func addProfileFlags(fs *flag.FlagSet) profileFlags {
	return profileFlags{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to this file (pprof format, atomic rename on completion)"),
		mem: fs.String("memprofile", "", "write a heap profile to this file on exit (after a final GC)"),
	}
}

// start begins the requested profiles and returns the stop function that
// flushes them. Both files land atomically: the CPU profile streams into a
// temp file in the destination directory and is renamed into place on stop,
// and the heap profile is captured into memory and written with the same
// temp+rename used for -out — so tooling pointed at the paths never reads a
// truncated profile. Profiles land only on a clean exit; fail() paths leave
// at most an unrenamed temp file behind.
func (p profileFlags) start() (stop func()) {
	var cpuTmp *os.File
	if *p.cpu != "" {
		f, err := os.CreateTemp(filepath.Dir(*p.cpu), "."+filepath.Base(*p.cpu)+".tmp-")
		if err != nil {
			fail("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			os.Remove(f.Name())
			fail("-cpuprofile: %v", err)
		}
		cpuTmp = f
	}
	memPath := *p.mem
	return func() {
		if cpuTmp != nil {
			pprof.StopCPUProfile()
			name := cpuTmp.Name()
			if err := cpuTmp.Close(); err != nil {
				fail("-cpuprofile: %v", err)
			}
			if err := os.Rename(name, *p.cpu); err != nil {
				os.Remove(name)
				fail("-cpuprofile: %v", err)
			}
		}
		if memPath != "" {
			runtime.GC() // settle allocation stats before the snapshot
			var buf bytes.Buffer
			if err := pprof.WriteHeapProfile(&buf); err != nil {
				fail("-memprofile: %v", err)
			}
			if err := sweep.WriteFileAtomic(memPath, buf.Bytes(), 0o644); err != nil {
				fail("-memprofile: %v", err)
			}
		}
	}
}
