package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnapshot(t *testing.T, dir, name string, doc Doc) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func snap(benchmarks ...Benchmark) Doc { return Doc{Benchmarks: benchmarks} }

func bench(name string, metrics map[string]float64) Benchmark {
	return Benchmark{Name: name, Runs: 1, Metrics: metrics, Pkg: "nsmac"}
}

func TestCompareDeltaTable(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", snap(
		bench("A/kernel=on", map[string]float64{"ns/op": 1000}),
		bench("B", map[string]float64{"ns/op": 500}),
		bench("Gone", map[string]float64{"ns/op": 9}),
	))
	cur := writeSnapshot(t, dir, "new.json", snap(
		bench("A/kernel=on", map[string]float64{"ns/op": 1100}),
		bench("B", map[string]float64{"ns/op": 400}),
		bench("Fresh", map[string]float64{"ns/op": 7}),
	))

	var out, errb bytes.Buffer
	if code := runCompare([]string{old, cur}, &out, &errb); code != 0 {
		t.Fatalf("exit %d without a threshold, want 0 (stderr: %s)", code, errb.String())
	}
	text := out.String()
	for _, want := range []string{"A/kernel=on", "+10.0%", "B", "-20.0%", "Fresh", "added", "Gone", "removed"} {
		if !strings.Contains(text, want) {
			t.Errorf("table lacks %q:\n%s", want, text)
		}
	}
}

func TestCompareThresholdGates(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", snap(
		bench("A", map[string]float64{"ns/op": 1000}),
	))
	cur := writeSnapshot(t, dir, "new.json", snap(
		bench("A", map[string]float64{"ns/op": 1300}),
	))

	var out, errb bytes.Buffer
	if code := runCompare([]string{"-threshold", "10", old, cur}, &out, &errb); code != 1 {
		t.Fatalf("30%% regression over a 10%% threshold: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("regressed row not marked:\n%s", out.String())
	}
	out.Reset()
	errb.Reset()
	if code := runCompare([]string{"-threshold", "50", old, cur}, &out, &errb); code != 0 {
		t.Fatalf("30%% regression under a 50%% threshold: exit %d, want 0", code)
	}
	// An improvement never gates on a cost metric...
	out.Reset()
	if code := runCompare([]string{"-threshold", "10", cur, old}, &out, &errb); code != 0 {
		t.Fatalf("improvement gated: exit %d, want 0", code)
	}
	// ...but the same direction gates a throughput metric.
	oldTp := writeSnapshot(t, dir, "oldtp.json", snap(
		bench("T", map[string]float64{"cells/sec": 500}),
	))
	curTp := writeSnapshot(t, dir, "newtp.json", snap(
		bench("T", map[string]float64{"cells/sec": 300}),
	))
	out.Reset()
	if code := runCompare([]string{"-metric", "cells/sec", "-higher-better", "-threshold", "10", oldTp, curTp}, &out, &errb); code != 1 {
		t.Fatalf("throughput drop over threshold: exit %d, want 1", code)
	}
}

func TestCompareInputErrors(t *testing.T) {
	dir := t.TempDir()
	ok := writeSnapshot(t, dir, "ok.json", snap(bench("A", map[string]float64{"ns/op": 1})))
	var out, errb bytes.Buffer
	if code := runCompare([]string{ok}, &out, &errb); code != 2 {
		t.Errorf("one argument: exit %d, want 2", code)
	}
	if code := runCompare([]string{ok, filepath.Join(dir, "missing.json")}, &out, &errb); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	disjoint := writeSnapshot(t, dir, "disjoint.json", snap(bench("Z", map[string]float64{"ns/op": 1})))
	if code := runCompare([]string{ok, disjoint}, &out, &errb); code != 2 {
		t.Errorf("disjoint snapshots: exit %d, want 2", code)
	}
}
