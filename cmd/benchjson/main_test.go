package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: nsmac
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweepThroughput/roster=perturbed/kernel=on/workers=1/batch=64         	       1	  19358637 ns/op	         8.000 cells/op	       413.3 cells/sec	 5551872 B/op	   23718 allocs/op
BenchmarkBitsetIntersectOne-8   	       2	    212398 ns/op
PASS
ok  	nsmac	0.041s
`

func TestParseBenchOutput(t *testing.T) {
	var doc Doc
	failed, err := parse(strings.NewReader(sample), &doc)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Error("no FAIL marker in input, got failed=true")
	}
	if got, want := doc.Context["goos"], "linux"; got != want {
		t.Errorf("goos = %q, want %q", got, want)
	}
	if got, want := doc.Context["cpu"], "Intel(R) Xeon(R) Processor @ 2.10GHz"; got != want {
		t.Errorf("cpu = %q, want %q", got, want)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if want := "SweepThroughput/roster=perturbed/kernel=on/workers=1/batch=64"; b.Name != want {
		t.Errorf("name = %q, want %q", b.Name, want)
	}
	if b.Runs != 1 || b.Pkg != "nsmac" {
		t.Errorf("runs=%d pkg=%q, want 1/nsmac", b.Runs, b.Pkg)
	}
	for unit, want := range map[string]float64{
		"ns/op": 19358637, "cells/op": 8, "cells/sec": 413.3,
		"B/op": 5551872, "allocs/op": 23718,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("metric %s = %v, want %v", unit, got, want)
		}
	}
	if got := doc.Benchmarks[1].Metrics["ns/op"]; got != 212398 {
		t.Errorf("second bench ns/op = %v, want 212398", got)
	}
}

func TestParseFlagsFailures(t *testing.T) {
	var doc Doc
	failed, err := parse(strings.NewReader("--- FAIL: BenchmarkX\nFAIL\tnsmac\t0.1s\n"), &doc)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("FAIL markers must be flagged")
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from failure-only input", len(doc.Benchmarks))
	}
}

func TestParseIgnoresMalformedLines(t *testing.T) {
	var doc Doc
	in := "BenchmarkNoFields\nBenchmarkBadRuns notanint 5 ns/op\nBenchmarkOdd-8 1 5\nBenchmarkOK-8 3 7 ns/op\n"
	if _, err := parse(strings.NewReader(in), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].Name != "OK-8" {
		t.Fatalf("want exactly BenchmarkOK parsed, got %+v", doc.Benchmarks)
	}
}
