// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can archive one benchmark snapshot
// per commit (BENCH_<sha>.json) and perf trajectories can be diffed across
// PRs without scraping log text.
//
// It reads benchmark output on stdin (or from the files given as arguments),
// keeps every metric pair a benchmark line reports (ns/op, B/op, allocs/op,
// and custom b.ReportMetric units like cells/sec), and preserves benchmark
// order. Context lines (goos, goarch, pkg, cpu) are captured per package.
//
// Examples:
//
//	go test -run '^$' -bench=. -benchtime=1x . | benchjson > BENCH_abc123.json
//	benchjson -label "$GITHUB_SHA" bench.txt > BENCH_${GITHUB_SHA}.json
//	benchjson compare -threshold 15 BENCH_old.json BENCH_new.json
//
// Exit status is 1 if the input contains a benchmark failure marker (--- FAIL
// or FAIL at line start) or no benchmark lines at all, so a silently broken
// bench step cannot archive an empty snapshot.
//
// The compare subcommand diffs two archived snapshots benchmark by benchmark
// (matched on package + name) and prints a delta table for one metric
// (-metric, default ns/op). With -threshold N it exits 1 when any matched
// benchmark regressed by more than N percent — upward for cost metrics,
// downward with -higher-better for throughput metrics — so CI can gate (or
// merely annotate, with the step marked continue-on-error) perf drift
// between the previous artifact and the current run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full sub-benchmark path, without the Benchmark prefix's
	// parallelism suffix stripped (e.g. "SweepThroughput/roster=paper-8").
	Name string `json:"name"`
	// Runs is the iteration count (the line's second column).
	Runs int64 `json:"runs"`
	// Metrics maps unit -> value for every "<value> <unit>" pair on the
	// line: ns/op, B/op, allocs/op, and any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
	// Pkg is the "pkg:" context the line appeared under ("" if none).
	Pkg string `json:"pkg,omitempty"`
}

// Doc is the emitted JSON document.
type Doc struct {
	// Label tags the snapshot (typically the commit SHA).
	Label string `json:"label,omitempty"`
	// Context holds the last-seen toolchain/host lines: goos, goarch, cpu.
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks preserves input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse consumes `go test -bench` output and appends into doc, reporting
// whether a FAIL marker was seen.
func parse(r io.Reader, doc *Doc) (failed bool, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "--- FAIL") || strings.HasPrefix(line, "FAIL") {
			failed = true
			continue
		}
		if k, v, ok := contextLine(line); ok {
			if k == "pkg" {
				pkg = v
			} else {
				if doc.Context == nil {
					doc.Context = make(map[string]string)
				}
				doc.Context[k] = v
			}
			continue
		}
		if b, ok := benchLine(line, pkg); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return failed, sc.Err()
}

// contextLine matches the "goos: linux" style preamble lines.
func contextLine(line string) (key, val string, ok bool) {
	for _, k := range []string{"goos", "goarch", "pkg", "cpu"} {
		if rest, found := strings.CutPrefix(line, k+": "); found {
			return k, strings.TrimSpace(rest), true
		}
	}
	return "", "", false
}

// benchLine parses one "BenchmarkX/sub-8  N  v unit  v unit ..." line.
func benchLine(line, pkg string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	// Shortest valid line: name, runs, value, unit.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:    strings.TrimPrefix(fields[0], "Benchmark"),
		Runs:    runs,
		Metrics: make(map[string]float64, (len(fields)-2)/2),
		Pkg:     pkg,
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:], os.Stdout, os.Stderr))
	}
	var (
		label = flag.String("label", "", "snapshot label recorded in the document (e.g. the commit SHA)")
		out   = flag.String("out", "", "write JSON here instead of stdout")
	)
	flag.Parse()

	doc := Doc{Label: *label}
	failed := false
	inputs := flag.Args()
	if len(inputs) == 0 {
		f, err := parse(os.Stdin, &doc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: stdin: %v\n", err)
			os.Exit(1)
		}
		failed = f
	}
	for _, path := range inputs {
		fh, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		f, err := parse(fh, &doc)
		fh.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
			os.Exit(1)
		}
		failed = failed || f
	}

	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(data)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: input contains FAIL markers")
		os.Exit(1)
	}
}
