package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"text/tabwriter"
)

// runCompare implements `benchjson compare old.json new.json`: a
// per-benchmark delta table over two archived snapshots, gated by an optional
// regression threshold. Benchmarks are matched by (pkg, name); entries
// present on only one side are listed but never gate. The delta sign
// convention follows the metric: ns/op-style metrics regress upward, while
// -higher-better metrics (cells/sec throughput) regress downward.
//
// Exit status: 0 on success, 1 when -threshold is non-zero and some matched
// benchmark regressed past it, 2 on usage or input errors.
func runCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		metric       = fs.String("metric", "ns/op", "metric unit to compare")
		threshold    = fs.Float64("threshold", 0, "fail (exit 1) when a benchmark regresses by more than this percentage; 0 reports only")
		higherBetter = fs.Bool("higher-better", false, "treat increases in the metric as improvements (throughput units)")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: benchjson compare [-metric ns/op] [-threshold pct] [-higher-better] old.json new.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	oldDoc, err := loadDoc(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	newDoc, err := loadDoc(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}

	oldBy := make(map[string]Benchmark, len(oldDoc.Benchmarks))
	for _, b := range oldDoc.Benchmarks {
		oldBy[b.Pkg+" "+b.Name] = b
	}

	tw := tabwriter.NewWriter(stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\told %s\tnew %s\tdelta\t\n", *metric, *metric)
	regressed := 0
	matched := 0
	seen := make(map[string]bool, len(newDoc.Benchmarks))
	for _, nb := range newDoc.Benchmarks {
		key := nb.Pkg + " " + nb.Name
		seen[key] = true
		ob, ok := oldBy[key]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%s\tadded\t\n", nb.Name, formatMetric(nb.Metrics[*metric]))
			continue
		}
		ov, oOK := ob.Metrics[*metric]
		nv, nOK := nb.Metrics[*metric]
		if !oOK || !nOK {
			fmt.Fprintf(tw, "%s\t?\t?\tno %s\t\n", nb.Name, *metric)
			continue
		}
		matched++
		delta := math.Inf(1)
		if ov != 0 {
			delta = (nv - ov) / ov * 100
		}
		mark := ""
		worse := delta
		if *higherBetter {
			worse = -delta
		}
		if *threshold > 0 && worse > *threshold {
			regressed++
			mark = "  REGRESSION"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%+.1f%%%s\t\n", nb.Name, formatMetric(ov), formatMetric(nv), delta, mark)
	}
	for _, ob := range oldDoc.Benchmarks {
		if !seen[ob.Pkg+" "+ob.Name] {
			fmt.Fprintf(tw, "%s\t%s\t-\tremoved\t\n", ob.Name, formatMetric(ob.Metrics[*metric]))
		}
	}
	tw.Flush()

	if matched == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmarks in common between the snapshots")
		return 2
	}
	if regressed > 0 {
		fmt.Fprintf(stderr, "benchjson: %d benchmark(s) regressed more than %.1f%% on %s\n",
			regressed, *threshold, *metric)
		return 1
	}
	return 0
}

func loadDoc(path string) (Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Doc{}, err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return Doc{}, fmt.Errorf("%s: %v", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return Doc{}, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	return doc, nil
}

// formatMetric renders a metric value compactly: integers without decimals,
// everything else with two.
func formatMetric(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}
