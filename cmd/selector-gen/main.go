// Command selector-gen builds (n,k)-selective families, reports their
// lengths against the Komlós–Greenberg optimum, and optionally verifies
// selectivity (exhaustively for small n, by sampling otherwise).
//
// Examples:
//
//	selector-gen -n 1024 -k 16                   # lengths only
//	selector-gen -n 14 -k 4 -verify              # exhaustive verification
//	selector-gen -n 65536 -k 64 -verify -trials 500
//	selector-gen -n 12 -k 3 -dump                # print the sets
package main

import (
	"flag"
	"fmt"
	"os"

	"nsmac/internal/mathx"
	"nsmac/internal/selectors"
)

func main() {
	var (
		n      = flag.Int("n", 1024, "universe size")
		k      = flag.Int("k", 16, "selectivity parameter")
		seed   = flag.Uint64("seed", 1, "seed for the random construction")
		verify = flag.Bool("verify", false, "verify selectivity (exhaustive for n <= 18, sampled otherwise)")
		trials = flag.Int("trials", 300, "sampling trials for large-n verification")
		dump   = flag.Bool("dump", false, "print every set (small n only)")
	)
	flag.Parse()

	if *k < 1 || *k > *n {
		fmt.Fprintln(os.Stderr, "selector-gen: need 1 <= k <= n")
		os.Exit(1)
	}

	i := mathx.Max(1, mathx.Log2Ceil(mathx.Max(2, *k)))
	random := selectors.NewRandomPow2(*n, i, *seed)
	ks := selectors.NewKautzSingleton(*n, *k)
	singles := selectors.NewSingletons(*n)
	bound := mathx.BoundKLogNK(*n, *k)

	fmt.Printf("universe n=%d, parameter k=%d (density rung i=%d)\n", *n, *k, i)
	fmt.Printf("KG optimum Θ(k log(n/k)+k): %d\n\n", bound)
	fmt.Printf("%-28s %12s %14s\n", "construction", "length", "length/bound")
	for _, f := range []selectors.Family{random, ks, singles} {
		fmt.Printf("%-28s %12d %14.2f\n", f.Name(), f.Length(), float64(f.Length())/float64(bound))
	}

	if *verify {
		fmt.Println()
		check := func(f selectors.Family) {
			var ok bool
			var w *selectors.Witness
			mode := "exhaustive"
			if *n <= 18 {
				ok, w = selectors.IsSelective(f, *k)
			} else {
				mode = fmt.Sprintf("sampled(%d)", *trials)
				ok, w = selectors.SampleSelective(f, *k, *trials, *seed+1)
			}
			if ok {
				fmt.Printf("%-28s %s: SELECTIVE\n", f.Name(), mode)
			} else {
				fmt.Printf("%-28s %s: VIOLATION %v\n", f.Name(), mode, w)
			}
		}
		check(random)
		check(ks)
		check(singles)
	}

	if *dump {
		if *n > 64 {
			fmt.Fprintln(os.Stderr, "selector-gen: -dump limited to n <= 64")
			os.Exit(1)
		}
		fmt.Println("\nrandom family sets:")
		e := selectors.Materialize(random)
		for j := int64(0); j < e.Length(); j++ {
			fmt.Printf("  F_%-3d = %s\n", j, e.Set(j))
		}
	}
}
