// Command wakeup-adversary attacks an algorithm with the paper's lower
// bound machinery: the Theorem 2.1 swap adversary (find a witness set
// forcing min{k, n−k+1} rounds) and the white-box spoiler (wake a colliding
// partner at every would-be success).
//
// Examples:
//
//	wakeup-adversary -attack swap -algo roundrobin -n 64 -k 12
//	wakeup-adversary -attack swap -algo wakeup_with_k -n 256 -k 16 -greedy
//	wakeup-adversary -attack spoiler -algo wait_and_go_nowait -n 256 -k 8
package main

import (
	"flag"
	"fmt"
	"os"

	"nsmac/internal/adversary"
	"nsmac/internal/core"
	"nsmac/internal/mathx"
	"nsmac/internal/model"
)

func main() {
	var (
		attack  = flag.String("attack", "swap", "attack: swap | spoiler")
		algoStr = flag.String("algo", "roundrobin", "target: roundrobin | wakeup_with_k | wakeupc | wait_and_go | wait_and_go_nowait | wakeupc_nomu")
		n       = flag.Int("n", 64, "universe size")
		k       = flag.Int("k", 12, "adversary's station budget")
		seed    = flag.Uint64("seed", 1, "seed")
		greedy  = flag.Bool("greedy", false, "swap: try every replacement candidate (slower, stronger)")
		first   = flag.Int("first", 1, "spoiler: initial station ID")
	)
	flag.Parse()

	if *k < 1 || *k > *n {
		fail("need 1 <= k <= n")
	}

	p := model.Params{N: *n, S: -1, Seed: *seed}
	var algo model.Algorithm
	var horizon int64
	switch *algoStr {
	case "roundrobin":
		a := core.NewRoundRobin()
		algo, horizon = a, a.Horizon(*n, *k)
	case "wakeup_with_k":
		p.K = *k
		algo, horizon = core.NewWakeupWithK(), core.WakeupWithKHorizon(*n, *k)
	case "wakeupc":
		a := core.NewWakeupC()
		algo, horizon = a, a.Horizon(*n, *k)
	case "wakeupc_nomu":
		a := &core.WakeupC{DisableWindowWait: true}
		algo, horizon = a, a.Horizon(*n, *k)
	case "wait_and_go":
		p.K = *k
		a := core.NewWaitAndGo()
		algo, horizon = a, a.Horizon(*n, *k)
	case "wait_and_go_nowait":
		p.K = *k
		a := &core.WaitAndGo{DisableWait: true}
		algo, horizon = a, a.Horizon(*n, *k)
	default:
		fail("unknown algorithm %q", *algoStr)
	}

	fmt.Printf("target    : %s (n=%d, k=%d)\n", algo.Name(), *n, *k)
	fmt.Printf("thm 2.1   : min{k, n−k+1} = %d slots\n\n", mathx.BoundLowerMinKN(*n, *k))

	switch *attack {
	case "swap":
		res := adversary.Swap(algo, p, *k, horizon, *greedy)
		fmt.Printf("swap adversary (greedy=%v):\n", *greedy)
		fmt.Printf("  forced slots    : %d\n", res.ForcedRounds+1)
		fmt.Printf("  distinct rounds : %d over %d witness sets\n", res.DistinctRounds, res.Iterations)
		fmt.Printf("  witness         : %v\n", res.Witness)
		if res.ForcedRounds+1 >= res.TheoremBound {
			fmt.Println("  verdict         : theorem bound met or exceeded")
		} else {
			fmt.Println("  verdict         : BELOW theorem bound — model bug, please report")
			os.Exit(2)
		}
	case "spoiler":
		res := adversary.SpoilerFrom(algo, p, *k, horizon, *first)
		fmt.Printf("spoiler attack (first station %d):\n", *first)
		fmt.Printf("  rounds under attack : %d\n", res.Rounds)
		fmt.Printf("  successes spoiled   : %d (budget %d)\n", res.Spoiled, *k-1)
		fmt.Printf("  pattern             : ids=%v wakes=%v\n", res.Pattern.IDs, res.Pattern.Wakes)
		if !res.Succeeded {
			fmt.Println("  verdict             : success fully suppressed within horizon")
			os.Exit(2)
		}
	default:
		fail("unknown attack %q", *attack)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wakeup-adversary: "+format+"\n", args...)
	os.Exit(1)
}
