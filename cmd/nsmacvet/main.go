// Command nsmacvet runs the repository's static-analysis suite — the five
// analyzers in nsmac/internal/lint that enforce the determinism, RNG-stream,
// registry-Ref, ScheduleClass and deprecation invariants — over a set of
// package patterns, like a purpose-built `go vet`.
//
// Usage:
//
//	go run ./cmd/nsmacvet [-analyzers list] [packages]
//
// With no packages it analyzes ./... from the current directory. It prints
// one line per diagnostic (file:line:col: [analyzer] message) and exits
// non-zero if any survive their suppression comments. Test files are not
// analyzed: the invariants govern shipped code, and the deprecation-pin
// tests intentionally exercise the old API.
//
// An audited violation is silenced with a comment on the offending line or
// the line above it:
//
//	//nsmac:<key>-ok <reason>
//
// where <key> is the analyzer's suppression key ("nondeterminism" for the
// determinism analyzer, the analyzer's name otherwise) and the reason is
// mandatory.
package main

import (
	"flag"
	"fmt"
	"os"

	"nsmac/internal/lint"
)

func main() {
	analyzers := flag.String("analyzers", "",
		"comma-separated analyzer selection (default: the whole suite)")
	list := flag.Bool("list", false, "print the suite's analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nsmacvet [-analyzers list] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, firstLine(a.Doc))
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}
	selected, err := lint.ByName(*analyzers)
	if err != nil {
		fail("%v", err)
	}
	pkgs, err := lint.Load(".", flag.Args()...)
	if err != nil {
		fail("%v", err)
	}
	bad := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, selected)
		if err != nil {
			fail("%v", err)
		}
		for _, d := range diags {
			bad++
			fmt.Printf("%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if bad > 0 {
		fail("%d diagnostic(s)", bad)
	}
}

// firstLine returns the summary line of an analyzer doc.
func firstLine(doc string) string {
	for i := 0; i < len(doc); i++ {
		if doc[i] == '\n' {
			return doc[:i]
		}
	}
	return doc
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nsmacvet: "+format+"\n", args...)
	os.Exit(1)
}
