// Command wakeup-sim runs one contention-resolution instance and prints the
// outcome, optionally with the channel transcript and the Figure 1/2 matrix
// renderings.
//
// Examples:
//
//	wakeup-sim -algo wakeupc -n 1024 -k 8 -pattern staggered -gap 7
//	wakeup-sim -algo wakeup_with_k -n 4096 -k 16 -pattern uniform -trace
//	wakeup-sim -algo wakeupc -n 256 -k 3 -render
package main

import (
	"flag"
	"fmt"
	"os"

	"nsmac/internal/adversary"
	"nsmac/internal/core"
	"nsmac/internal/model"
	"nsmac/internal/sim"
	"nsmac/internal/trace"
)

func main() {
	var (
		algoName = flag.String("algo", "wakeupc", "algorithm: roundrobin | wakeup_with_s | wakeup_with_k | wakeupc | rpd | rpdk | localssf")
		n        = flag.Int("n", 1024, "universe size (station IDs 1..n)")
		k        = flag.Int("k", 8, "number of stations the adversary wakes")
		s        = flag.Int64("s", 0, "first wake-up slot")
		pattern  = flag.String("pattern", "simultaneous", "wake pattern: simultaneous | staggered | uniform | bursts")
		gap      = flag.Int64("gap", 7, "gap for staggered/bursts patterns")
		width    = flag.Int64("width", 64, "window width for the uniform pattern")
		seed     = flag.Uint64("seed", 1, "random seed (schedules and pattern)")
		horizon  = flag.Int64("horizon", 0, "simulation cap (0 = algorithm's own bound)")
		showTr   = flag.Bool("trace", false, "print the channel transcript timeline")
		render   = flag.Bool("render", false, "print the Figure 1/2 matrix renderings (wakeupc only)")
	)
	flag.Parse()

	if *k < 1 || *k > *n {
		fail("need 1 <= k <= n")
	}

	p := model.Params{N: *n, S: -1, Seed: *seed}
	var algo model.Algorithm
	var hor int64
	switch *algoName {
	case "roundrobin":
		a := core.NewRoundRobin()
		algo, hor = a, a.Horizon(*n, *k)
	case "wakeup_with_s":
		p.S = *s
		algo, hor = core.NewWakeupWithS(), core.WakeupWithSHorizon(*n, *k)
	case "wakeup_with_k":
		p.K = *k
		algo, hor = core.NewWakeupWithK(), core.WakeupWithKHorizon(*n, *k)
	case "wakeupc":
		a := core.NewWakeupC()
		algo, hor = a, a.Horizon(*n, *k)
	case "rpd":
		a := core.NewRPD()
		algo, hor = a, a.Horizon(*n, *k)
	case "rpdk":
		p.K = *k
		a := core.NewRPDWithK()
		algo, hor = a, a.Horizon(*n, *k)
	case "localssf":
		p.K = *k
		a := core.NewLocalSSF()
		algo, hor = a, a.Horizon(*n, *k)
	default:
		fail("unknown algorithm %q", *algoName)
	}
	if *horizon > 0 {
		hor = *horizon
	}

	var gen adversary.Generator
	switch *pattern {
	case "simultaneous":
		gen = adversary.Simultaneous(*s)
	case "staggered":
		gen = adversary.Staggered(*s, *gap)
	case "uniform":
		gen = adversary.UniformWindow(*s, *width)
	case "bursts":
		gen = adversary.Bursts(*s, 4, *gap)
	default:
		fail("unknown pattern %q", *pattern)
	}
	w := gen.Generate(*n, *k, *seed)

	fmt.Printf("algorithm : %s\n", algo.Name())
	fmt.Printf("universe  : n=%d, k=%d awake\n", *n, *k)
	fmt.Printf("pattern   : %s  ids=%v wakes=%v\n", gen.Name, w.IDs, w.Wakes)
	fmt.Printf("horizon   : %d slots\n", hor)

	res, ch, err := sim.Run(algo, p, w, sim.Options{
		Horizon: hor, Seed: *seed, RecordTrace: *showTr,
	})
	if err != nil {
		fail("run: %v", err)
	}
	fmt.Printf("result    : %s\n", res)
	if res.Succeeded {
		bound := float64(res.Rounds)
		_ = bound
		fmt.Printf("rounds    : %d (t−s, the paper's cost measure)\n", res.Rounds)
	}

	if *showTr {
		fmt.Println("\ntranscript:")
		fmt.Println(trace.Legend())
		fmt.Println(trace.Timeline(ch.Trace(), 100))
	}

	if *render {
		wc, ok := algo.(*core.WakeupC)
		if !ok {
			fail("-render requires -algo wakeupc")
		}
		spec := wc.Spec(p)
		fmt.Println("\nFigure 1 analogue — rows scanned over time:")
		to := res.SuccessSlot + 1
		if to < 40 {
			to = 40
		}
		step := (to - w.FirstWake()) / 16
		if step < 1 {
			step = 1
		}
		fmt.Print(trace.RowScan(spec, w.IDs, w.Wakes, w.FirstWake(), to, step))
		fmt.Println("\nFigure 2 analogue — vertical alignment at the success slot:")
		at := res.SuccessSlot
		if at < 0 {
			at = w.LastWake() + int64(spec.Window)
		}
		fmt.Print(trace.ColumnAlignment(spec, w.IDs, w.Wakes, at))
	}

	if !res.Succeeded {
		os.Exit(2)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wakeup-sim: "+format+"\n", args...)
	os.Exit(1)
}
