// Command wakeup-sim runs contention-resolution instances. With a single
// algorithm, pattern, n, k and one trial it prints the detailed outcome,
// optionally with the channel transcript and the Figure 1/2 matrix
// renderings. Any flag accepting a comma-separated list (or -trials > 1)
// switches to grid mode: the cross product runs through the sweep
// orchestrator — which routes eligible cells (oblivious algorithms on any
// built-in channel, noisy/jam included) to the word-wide bitset slot kernel
// with identical output — and renders as an aligned table, CSV, or JSON;
// -dump-spec emits the grid as a spec document for wakeup-bench -spec /
// -shard.
//
// Examples:
//
//	wakeup-sim -algo wakeupc -n 1024 -k 8 -pattern staggered -gap 7
//	wakeup-sim -algo wakeup_with_k -n 4096 -k 16 -pattern uniform -trace
//	wakeup-sim -algo wakeupc -n 256 -k 3 -render
//	wakeup-sim -algo wakeupc,rpd -n 256,1024 -k 2,8,32 -trials 5 -format csv
//	wakeup-sim -patterns spoiler,swap            # white-box adversary cells
//	wakeup-sim -channels none,noisy:0.05 -trials 10   # channel-model axis
//	wakeup-sim -algo all -trials 10 -dump-spec   # grid → spec document
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nsmac/internal/core"
	"nsmac/internal/model"
	"nsmac/internal/sim"
	"nsmac/internal/trace"
	"nsmac/sweep"
)

func main() {
	var (
		algoList = flag.String("algo", "wakeupc", "algorithm entries, comma-separated: roundrobin | wakeup_with_s[:slot] | wakeup_with_k | wakeupc | rpd | rpdk | beb | localssf | all")
		nList    = flag.String("n", "1024", "universe size(s), comma-separated (station IDs 1..n)")
		kList    = flag.String("k", "8", "number(s) of stations the adversary wakes, comma-separated")
		s        = flag.Int64("s", 0, "first wake-up slot")
		patList  = flag.String("pattern", "simultaneous", "wake pattern entries, comma-separated: simultaneous | staggered | uniform | bursts | spoiler | swap (see -patterns grammar)")
		patAlias = flag.String("patterns", "", "alias for -pattern")
		chList   = flag.String("channels", "", "channel-model entries, comma-separated: none | cd | sender_cd | ack | noisy:<p> | jam:<q>; empty keeps the paper channel and omits the channel axis")
		gap      = flag.Int64("gap", 7, "gap for staggered/bursts patterns")
		width    = flag.Int64("width", 64, "window width for the uniform pattern")
		seed     = flag.Uint64("seed", 1, "random seed (schedules and pattern)")
		horizon  = flag.Int64("horizon", 0, "simulation cap (0 = algorithm's own bound; single-run mode only)")
		trials   = flag.Int("trials", 1, "trials per grid cell (grid mode when > 1)")
		workers  = flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		batch    = flag.Int("batch", 0, "trials per work item (0 = auto); tunes scheduling overhead, never output")
		format   = flag.String("format", "text", "grid-mode output format: text | csv | json")
		outFile  = flag.String("out", "", "grid mode: write the table (or -dump-spec document) to this file instead of stdout; the write is atomic (temp file + rename)")
		dumpSpec = flag.Bool("dump-spec", false, "grid mode: emit the grid as a reusable spec document and exit")
		showTr   = flag.Bool("trace", false, "print the channel transcript timeline (single-run mode)")
		render   = flag.Bool("render", false, "print the Figure 1/2 matrix renderings (single-run wakeupc only)")
	)
	flag.Parse()
	if *patAlias != "" {
		*patList = *patAlias
	}

	ns, err := sweep.ParseInts(*nList)
	if err != nil {
		fail("-n: %v", err)
	}
	ks, err := sweep.ParseInts(*kList)
	if err != nil {
		fail("-k: %v", err)
	}
	algos := strings.Split(*algoList, ",")
	pats := strings.Split(*patList, ",")
	channels, err := sweep.ChannelsByName(*chList)
	if err != nil {
		fail("-channels: %v", err)
	}

	gridMode := *dumpSpec || *trials > 1 || len(ns) > 1 || len(ks) > 1 ||
		len(algos) > 1 || len(pats) > 1 || len(channels) > 1
	if gridMode {
		runGrid(algos, pats, channels, ns, ks, *trials, *seed, *workers, *batch, *format, *outFile, *dumpSpec, *s, *gap, *width)
		return
	}
	if *outFile != "" {
		// Single-run output is a narrative report, not a machine artifact;
		// refusing beats silently ignoring the flag.
		fail("-out applies to grid mode (pass -trials > 1, multiple axis values, or -dump-spec)")
	}
	var ch model.ChannelModel
	if len(channels) == 1 {
		ch = channels[0]
	}
	runSingle(algos[0], pats[0], ch, ns[0], ks[0], *s, *gap, *width, *seed, *horizon, *showTr, *render)
}

// caseEntries rewrites the -algo list into registry entries: "all" expands
// to the standard set, and a nonzero -s travels as the scenario-A case
// argument ("wakeup_with_s:<s>") so the grid — and any spec document dumped
// from it — pins the known start slot by name.
func caseEntries(algos []string, s int64) []string {
	var out []string
	for _, a := range algos {
		a = strings.TrimSpace(a)
		if a == "all" {
			out = append(out, sweep.StandardCaseNames()...)
			continue
		}
		out = append(out, a) // empty entries fall through to CasesByName's error
	}
	if s != 0 {
		for i, a := range out {
			if a == "wakeup_with_s" {
				out[i] = fmt.Sprintf("wakeup_with_s:%d", s)
			}
		}
	}
	return out
}

// runGrid executes the cross product through the sweep orchestrator.
func runGrid(algos, pats []string, channels []model.ChannelModel, ns, ks []int, trials int, seed uint64,
	workers, batch int, format, outFile string, dumpSpec bool, s, gap, width int64) {

	cases, err := sweep.CasesByName(strings.Join(caseEntries(algos, s), ","))
	if err != nil {
		fail("%v", err)
	}
	gens, err := sweep.ParsePatternsAt(strings.Join(pats, ","), s, gap, width)
	if err != nil {
		fail("%v", err)
	}
	spec := sweep.Spec{
		Name:     "wakeup-sim",
		Cases:    cases,
		Patterns: gens,
		Channels: channels,
		Ns:       ns,
		Ks:       ks,
		Trials:   trials,
		Seed:     seed,
		Workers:  workers,
		Batch:    batch,
	}
	if dumpSpec {
		doc, err := spec.Doc()
		if err != nil {
			fail("%v", err)
		}
		data, err := doc.Encode()
		if err != nil {
			fail("%v", err)
		}
		emit(outFile, data)
		return
	}
	// One enumeration serves both the skip report and the executable grid.
	g, skipped, err := spec.Compile()
	if err != nil {
		fail("%v", err)
	}
	for _, sk := range skipped {
		fmt.Fprintf(os.Stderr, "wakeup-sim: skipping cell %s\n", sk)
	}
	res, err := g.Execute()
	if err != nil {
		fail("%v", err)
	}
	out, err := res.Render(format)
	if err != nil {
		fail("%v", err)
	}
	emit(outFile, []byte(out))
}

// emit writes output to the -out file, or stdout when none was given. File
// writes are atomic (temp file + rename in the target directory), so a
// killed process can never leave a truncated artifact behind.
func emit(outFile string, data []byte) {
	if outFile == "" {
		os.Stdout.Write(data)
		return
	}
	if err := sweep.WriteFileAtomic(outFile, data, 0o644); err != nil {
		fail("%v", err)
	}
}

// runSingle preserves the classic one-instance output with transcript and
// matrix renderings. ch is the channel model (nil for the paper default).
func runSingle(algoName, pattern string, ch model.ChannelModel, n, k int, s, gap, width int64,
	seed uint64, horizon int64, showTr, render bool) {

	if k < 1 || k > n {
		fail("need 1 <= k <= n")
	}

	p := model.Params{N: n, S: -1, Seed: seed}
	var algo model.Algorithm
	var hor int64
	switch algoName {
	case "roundrobin":
		a := core.NewRoundRobin()
		algo, hor = a, a.Horizon(n, k)
	case "wakeup_with_s":
		p.S = s
		algo, hor = core.NewWakeupWithS(), core.WakeupWithSHorizon(n, k)
	case "wakeup_with_k":
		p.K = k
		algo, hor = core.NewWakeupWithK(), core.WakeupWithKHorizon(n, k)
	case "wakeupc":
		a := core.NewWakeupC()
		algo, hor = a, a.Horizon(n, k)
	case "rpd":
		a := core.NewRPD()
		algo, hor = a, a.Horizon(n, k)
	case "rpdk":
		p.K = k
		a := core.NewRPDWithK()
		algo, hor = a, a.Horizon(n, k)
	case "beb":
		a := core.NewBEB()
		algo, hor = a, a.Horizon(n, k)
	case "localssf":
		p.K = k
		a := core.NewLocalSSF()
		algo, hor = a, a.Horizon(n, k)
	default:
		fail("unknown algorithm %q", algoName)
	}
	if horizon > 0 {
		hor = horizon
	}

	if pattern == "" || pattern == "suite" {
		fail("the pattern suite needs grid mode; pass -trials > 1 or multiple axis values")
	}
	gens, err := sweep.ParsePatternsAt(pattern, s, gap, width)
	if err != nil {
		fail("%v", err)
	}
	gen := gens[0]
	// White-box families (spoiler, swap) build their pattern against the
	// selected algorithm and channel model; black-box families draw from
	// (n, k, seed).
	w := gen.Pattern(algo, p, k, hor, seed, ch)

	fmt.Printf("algorithm : %s\n", algo.Name())
	fmt.Printf("universe  : n=%d, k=%d awake\n", n, k)
	fmt.Printf("pattern   : %s  ids=%v wakes=%v\n", gen.Name, w.IDs, w.Wakes)
	if ch != nil {
		fmt.Printf("channel   : %s\n", ch.Name())
	}
	fmt.Printf("horizon   : %d slots\n", hor)

	res, runCh, err := sim.Run(algo, p, w, sim.Options{
		Horizon: hor, Seed: seed, RecordTrace: showTr, Channel: ch,
	})
	if err != nil {
		fail("run: %v", err)
	}
	fmt.Printf("result    : %s\n", res)
	if res.Succeeded {
		fmt.Printf("rounds    : %d (t−s, the paper's cost measure)\n", res.Rounds)
	}
	fmt.Printf("energy    : %d (%d transmissions + %d listening slots)\n",
		res.Energy(), res.Transmissions, res.Listens)

	if showTr {
		fmt.Println("\ntranscript:")
		fmt.Println(trace.Legend())
		fmt.Println(trace.TimelineOf(runCh, 100))
	}

	if render {
		wc, ok := algo.(*core.WakeupC)
		if !ok {
			fail("-render requires -algo wakeupc")
		}
		spec := wc.Spec(p)
		fmt.Println("\nFigure 1 analogue — rows scanned over time:")
		to := res.SuccessSlot + 1
		if to < 40 {
			to = 40
		}
		step := (to - w.FirstWake()) / 16
		if step < 1 {
			step = 1
		}
		fmt.Print(trace.RowScan(spec, w.IDs, w.Wakes, w.FirstWake(), to, step))
		fmt.Println("\nFigure 2 analogue — vertical alignment at the success slot:")
		at := res.SuccessSlot
		if at < 0 {
			at = w.LastWake() + int64(spec.Window)
		}
		fmt.Print(trace.ColumnAlignment(spec, w.IDs, w.Wakes, at))
	}

	if !res.Succeeded {
		os.Exit(2)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wakeup-sim: "+format+"\n", args...)
	os.Exit(1)
}
