package nsmac_test

import (
	"fmt"

	"nsmac"
)

// The basic Scenario C flow: nothing is known except n, three stations wake
// at arbitrary slots, and wakeup(n) isolates one of them.
func Example() {
	p := nsmac.ScenarioC(1024, 42)
	w := nsmac.WakePattern{
		IDs:   []int{37, 502, 999},
		Wakes: []int64{5, 19, 23},
	}
	algo := nsmac.NewWakeupC()
	res, _, err := nsmac.Run(algo, p, w, nsmac.RunOptions{
		Horizon: algo.Horizon(p.N, w.K()),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("succeeded:", res.Succeeded)
	fmt.Println("rounds within bound:", res.Rounds <= nsmac.BoundKLogLogLog(p.N, w.K()))
	// Output:
	// succeeded: true
	// rounds within bound: true
}

// Scenario A: the start slot s is known (e.g. announced by a beacon), so
// stations woken at s run the selective-family ladder from a common origin.
func ExampleNewWakeupWithS() {
	const s = 50
	p := nsmac.Params{N: 2048, S: s, Seed: 7}
	w := nsmac.Simultaneous([]int{101, 480, 777}, s)
	res, _, err := nsmac.Run(nsmac.NewWakeupWithS(), p, w, nsmac.RunOptions{
		Horizon: nsmac.WakeupWithSHorizon(p.N, w.K()),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("succeeded:", res.Succeeded)
	fmt.Println("cost measured from s:", res.Rounds == res.SuccessSlot-s)
	// Output:
	// succeeded: true
	// cost measured from s: true
}

// Scenario B: the bound k is known; wait_and_go synchronizes stragglers on
// selective-family boundaries.
func ExampleNewWakeupWithK() {
	p := nsmac.Params{N: 512, K: 4, S: -1, Seed: 3}
	w := nsmac.WakePattern{
		IDs:   []int{10, 20, 30, 40},
		Wakes: []int64{0, 5, 9, 33},
	}
	res, _, err := nsmac.Run(nsmac.NewWakeupWithK(), p, w, nsmac.RunOptions{
		Horizon: nsmac.WakeupWithKHorizon(p.N, p.K),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("succeeded:", res.Succeeded)
	// Output:
	// succeeded: true
}

// The Theorem 2.1 lower bound, found constructively: the swap adversary
// drags round-robin through at least min{k, n−k+1} slots.
func ExampleSwapAdversary() {
	p := nsmac.Params{N: 32, S: -1, Seed: 4}
	res := nsmac.SwapAdversary(nsmac.NewRoundRobin(), p, 6, 40, false)
	fmt.Println("meets Thm 2.1 bound:", res.ForcedRounds+1 >= nsmac.BoundLower(32, 6))
	fmt.Println("witness size:", len(res.Witness))
	// Output:
	// meets Thm 2.1 bound: true
	// witness size: 6
}

// Conflict resolution (the Komlós–Greenberg objective): every awake station
// transmits alone; stations retire when they hear their own ID succeed.
func ExampleRunAll() {
	p := nsmac.Params{N: 64, K: 3, S: -1, Seed: 5}
	w := nsmac.Simultaneous([]int{2, 17, 40}, 0)
	all, err := nsmac.RunAll(nsmac.NewKGConflictResolution(), p, w, nsmac.RunOptions{
		Horizon: 4000, Seed: 5,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("all delivered:", all.Succeeded)
	fmt.Println("stations served:", len(all.FirstSuccess))
	// Output:
	// all delivered: true
	// stations served: 3
}
