// Satellite: Scenario A on a satellite uplink. A beacon broadcast fixes the
// contention start slot s for everyone (the satellite announces "contention
// window opens at slot 50"), so ground terminals that come online exactly
// at the window start run select_among_the_first, and wakeup_with_s
// resolves them in Θ(k log(n/k)+1) — the knowledge-richest scenario of the
// paper (§3).
package main

import (
	"fmt"
	"log"

	"nsmac"
)

func main() {
	const (
		n = 2048 // provisioned terminal IDs
		s = 50   // beacon-announced contention start
	)

	// Five terminals have traffic when the window opens; all of them start
	// contending exactly at s (that is Scenario A's premise — s is the
	// first slot with an active station, and it is known to all).
	w := nsmac.Simultaneous([]int{101, 480, 777, 1200, 2001}, s)
	k := w.K()

	p := nsmac.Params{N: n, S: s, Seed: 2013}
	algo := nsmac.NewWakeupWithS()

	res, ch, err := nsmac.Run(algo, p, w, nsmac.RunOptions{
		Horizon:     nsmac.WakeupWithSHorizon(n, k),
		RecordTrace: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Succeeded {
		log.Fatal("uplink contention unresolved — contradicts §3")
	}

	fmt.Printf("beacon window opens at slot %d; %d of %d terminals contend\n", s, k, n)
	fmt.Printf("terminal %d transmits alone at slot %d (%d rounds after s)\n",
		res.Winner, res.SuccessSlot, res.Rounds)
	fmt.Printf("slots wasted: %d collisions, %d silences\n", res.Collisions, res.Silences)
	fmt.Printf("Θ(k log(n/k)+1) bound: %d rounds; measured/bound = %.2f\n",
		nsmac.BoundKLogNK(n, k), float64(res.Rounds)/float64(nsmac.BoundKLogNK(n, k)))

	// The transcript shows the even/odd interleaving: round-robin ticks on
	// even slots while the selective families probe on odd slots.
	events := ch.Trace()
	upTo := res.SuccessSlot - s + 1
	fmt.Printf("\nfirst %d slots of the contention window (. silence, * collision, digit success):\n", upTo)
	for i, ev := range events {
		if int64(i) >= upTo {
			break
		}
		switch {
		case ev.Truth == nsmac.Success:
			fmt.Print(ev.Winner % 10)
		case ev.Truth == nsmac.Collision:
			fmt.Print("*")
		default:
			fmt.Print(".")
		}
	}
	fmt.Println()
}
