// Allbroadcast: the Komlós–Greenberg objective the paper's related-work
// section contrasts with wake-up — EVERY active station must transmit its
// message successfully, not just one. A sensor field of 512 nodes wakes a
// cluster of 12 after an event; each holds a reading that must reach the
// sink over the shared channel.
//
// Two resolvers are compared: kg_conflict_resolution (the paper's weak
// no-collision-detection model — stations retire when they hear their own
// success, the only feedback that model carries) and tree_cd (binary
// splitting, which needs the strictly stronger collision-detection
// feedback).
package main

import (
	"fmt"
	"log"
	"sort"

	"nsmac"
)

func main() {
	const (
		n = 512
		k = 12
	)
	ids := []int{7, 31, 64, 100, 180, 222, 256, 300, 365, 401, 444, 500}
	w := nsmac.Simultaneous(ids, 0)

	fmt.Printf("sensor field: n=%d provisioned nodes, k=%d report after the event\n", n, k)
	fmt.Printf("KG bound k+k·log(n/k): %d slots\n\n", nsmac.BoundKLogNK(n, k))

	// --- no collision detection: the paper's model --------------------
	kg := nsmac.NewKGConflictResolution()
	pKG := nsmac.Params{N: n, K: k, S: -1, Seed: 77}
	allKG, err := nsmac.RunAll(kg, pKG, w, nsmac.RunOptions{Horizon: 20000, Seed: 77})
	if err != nil {
		log.Fatal(err)
	}
	report("kg_conflict_resolution (no CD)", allKG, ids)

	// --- with collision detection: the classic tree ------------------
	tree := nsmac.NewTreeCD()
	pT := nsmac.Params{N: n, S: -1, Seed: 77}
	allT, err := nsmac.RunAll(tree, pT, w, nsmac.RunOptions{
		Horizon: 20000, Channel: nsmac.ChannelCD(), Seed: 77,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("tree_cd (collision detection)", allT, ids)

	fmt.Println("collision-detection feedback buys a leaner schedule; the")
	fmt.Println("no-CD resolver pays the interleaving overhead but needs no")
	fmt.Println("feedback beyond hearing its own message echo — the paper's model.")
}

func report(name string, all nsmac.AllResult, ids []int) {
	if !all.Succeeded {
		log.Fatalf("%s: not all sensors delivered", name)
	}
	fmt.Printf("%s: all %d readings delivered in %d slots\n", name, len(ids), all.Slots)
	type pair struct {
		id   int
		slot int64
	}
	var order []pair
	for id, slot := range all.FirstSuccess {
		order = append(order, pair{id, slot})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].slot < order[j].slot })
	fmt.Printf("  delivery order:")
	for _, p := range order {
		fmt.Printf(" %d@%d", p.id, p.slot)
	}
	fmt.Print("\n\n")
}
