// Adversarial: Theorem 2.1 in action. The swap adversary plays against
// round-robin and against wakeup_with_k, repeatedly replacing the station
// the algorithm isolates with a fresh one, and drags both through at least
// min{k, n−k+1} rounds — the paper's lower bound, found constructively.
package main

import (
	"fmt"

	"nsmac"
)

func main() {
	const (
		n = 64
		k = 12
	)
	bound := nsmac.BoundLower(n, k)
	fmt.Printf("Theorem 2.1: any algorithm needs ≥ min{k, n−k+1} = %d rounds (n=%d, k=%d)\n\n", bound, n, k)

	// Round-robin: the adversary walks the witness set along the residue
	// wheel, forcing close to n−k+1 rounds.
	rr := nsmac.NewRoundRobin()
	pRR := nsmac.Params{N: n, S: -1, Seed: 99}
	resRR := nsmac.SwapAdversary(rr, pRR, k, int64(n)+2, false)
	report("round_robin", resRR)

	// wakeup_with_k: the upper-bound algorithm cannot escape the lower
	// bound either — no algorithm can.
	wwk := nsmac.NewWakeupWithK()
	pK := nsmac.Params{N: n, K: k, S: -1, Seed: 99}
	resK := nsmac.SwapAdversary(wwk, pK, k, nsmac.WakeupWithKHorizon(n, k), false)
	report("wakeup_with_k", resK)

	// Greedy adversary: strictly stronger probing (tries every candidate
	// replacement station).
	resG := nsmac.SwapAdversary(rr, pRR, k, int64(n)+2, true)
	fmt.Printf("greedy adversary vs round_robin: forced %d slots (plain forced %d)\n\n",
		resG.ForcedRounds+1, resRR.ForcedRounds+1)

	// The spoiler attack: wake a colliding partner at every would-be
	// success. Against the full interleaved algorithm the damage is capped
	// by the collision-free round-robin component (starting from the
	// station whose residue comes up last probes the worst case), while
	// the wait barrier blocks all mid-family spoils in the selective
	// component.
	spStd := nsmac.SpoilerAdversary(wwk, pK, k, nsmac.WakeupWithKHorizon(n, k))
	spWorst := nsmac.SpoilerAdversaryFrom(wwk, pK, k, nsmac.WakeupWithKHorizon(n, k), n)
	fmt.Printf("spoiler vs wakeup_with_k     : %d rounds from station 1, %d rounds from station %d\n",
		spStd.Rounds, spWorst.Rounds, n)
	fmt.Printf("  (%d and %d successes spoiled; round-robin slots are unspoilable,\n",
		spStd.Spoiled, spWorst.Spoiled)
	fmt.Println("   so interleaving caps the damage at O(n) no matter what)")
}

func report(name string, r nsmac.SwapResult) {
	fmt.Printf("%s:\n", name)
	fmt.Printf("  forced slots     : %d (theorem bound %d)\n", r.ForcedRounds+1, r.TheoremBound)
	fmt.Printf("  distinct rounds  : %d across %d witness sets\n", r.DistinctRounds, r.Iterations)
	fmt.Printf("  witness set      : %v (simultaneous wake at 0)\n", r.Witness)
	if r.ForcedRounds+1 >= r.TheoremBound {
		fmt.Printf("  verdict          : lower bound REPRODUCED\n\n")
	} else {
		fmt.Printf("  verdict          : adversary weaker than theorem (unexpected)\n\n")
	}
}
