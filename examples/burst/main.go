// Burst: an Ethernet-like segment where a power event wakes 16 of 4096
// stations in a short window — the paper's motivating workload ("most
// transmitters are inactive most of the time, while only a few are busy",
// §1). The example compares every applicable algorithm on the same burst
// and shows the selective-family algorithms beating time-division
// multiplexing by orders of magnitude at k ≪ n.
package main

import (
	"fmt"
	"log"

	"nsmac"
)

func main() {
	const (
		n = 4096
		k = 16
	)

	// 16 stations wake within a 4-slot window after the event at slot 100 —
	// dense enough that many contend before anyone can win.
	ids := []int{12, 99, 256, 300, 511, 777, 1024, 1500,
		2000, 2222, 2600, 3000, 3333, 3800, 4000, 4096}
	wakes := make([]int64, k)
	for i := range wakes {
		wakes[i] = 100 + int64(i%4) // four waves, four stations each
	}
	w := nsmac.WakePattern{IDs: ids, Wakes: wakes}

	type entry struct {
		name    string
		algo    nsmac.Algorithm
		p       nsmac.Params
		horizon int64
	}
	wc := nsmac.NewWakeupC()
	entries := []entry{
		{"round_robin (TDM)", nsmac.NewRoundRobin(),
			nsmac.Params{N: n, S: -1, Seed: 7}, int64(n) + 2},
		{"wakeup_with_k (B: k known)", nsmac.NewWakeupWithK(),
			nsmac.Params{N: n, K: k, S: -1, Seed: 7}, nsmac.WakeupWithKHorizon(n, k)},
		{"wakeup(n)    (C: nothing)", wc,
			nsmac.Params{N: n, S: -1, Seed: 7}, wc.Horizon(n, k)},
		{"rpd          (randomized)", nsmac.NewRPD(),
			nsmac.Params{N: n, S: -1, Seed: 7}, nsmac.NewRPD().Horizon(n, k)},
	}

	fmt.Printf("burst workload: n=%d, k=%d stations waking over 4 slots\n", n, k)
	fmt.Printf("bounds: k·log(n/k)+k+1 = %d   k·log n·log log n = %d   TDM = %d\n\n",
		nsmac.BoundKLogNK(n, k), nsmac.BoundKLogLogLog(n, k), n)
	fmt.Printf("%-30s %10s %10s\n", "algorithm", "rounds", "winner")

	for _, e := range entries {
		res, _, err := nsmac.Run(e.algo, e.p, w, nsmac.RunOptions{Horizon: e.horizon, Seed: 7})
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		if !res.Succeeded {
			fmt.Printf("%-30s %10s %10s\n", e.name, "FAIL", "-")
			continue
		}
		fmt.Printf("%-30s %10d %10d\n", e.name, res.Rounds, res.Winner)
	}

	fmt.Println("\nthe selective-family algorithms resolve the burst in a tiny")
	fmt.Println("fraction of the TDM cost — the gap the paper quantifies.")
}
