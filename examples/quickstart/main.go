// Quickstart: three stations join a 1024-station channel at different,
// unannounced times (Scenario C — nothing is known except n). The wakeup(n)
// protocol of §5 lets one of them transmit alone within
// O(k log n log log n) slots.
package main

import (
	"fmt"
	"log"

	"nsmac"
)

func main() {
	const n = 1024

	// Scenario C knowledge: only n (K = 0, S = -1). The seed keys the
	// waking matrix; any seed works, the same seed reproduces the run.
	p := nsmac.Params{N: n, K: 0, S: -1, Seed: 42}

	// The adversary wakes three stations at arbitrary slots.
	w := nsmac.WakePattern{
		IDs:   []int{37, 502, 999},
		Wakes: []int64{5, 19, 23},
	}

	algo := nsmac.NewWakeupC()
	res, _, err := nsmac.Run(algo, p, w, nsmac.RunOptions{
		Horizon: algo.Horizon(n, w.K()),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("first wake-up at slot %d\n", w.FirstWake())
	fmt.Printf("outcome: %s\n", res)
	fmt.Printf("theoretical bound k·log n·log log n = %d slots\n",
		nsmac.BoundKLogLogLog(n, w.K()))
	if !res.Succeeded {
		log.Fatal("wake-up failed — this contradicts Theorem 5.3")
	}
	fmt.Printf("measured/bound ratio: %.2f\n",
		float64(res.Rounds)/float64(nsmac.BoundKLogLogLog(n, w.K())))
}
