// Package nsmac is a Go reproduction of De Marco & Kowalski, "Contention
// Resolution in a Non-Synchronized Multiple Access Channel" (IPDPS 2013):
// deterministic wake-up algorithms for a slotted multiple-access channel
// without collision detection, where up to k of n stations wake up at
// adversarially chosen times under a global clock.
//
// The public API re-exports the model vocabulary and the paper's algorithms:
//
//	p := nsmac.ScenarioC(1024, 1)                // knowledge: only n
//	algo := nsmac.NewWakeupC()                   // the §5 algorithm
//	w := nsmac.Simultaneous([]int{3, 17, 99}, 0) // adversary's move
//	res, _, err := nsmac.Run(algo, p, w, nsmac.RunOptions{
//		Horizon: algo.Horizon(p.N, 3),
//	})
//	// res.Winner transmitted alone at res.SuccessSlot.
//
// Scenario A (known start time s) uses NewWakeupWithS with Params.S set;
// Scenario B (known bound k) uses NewWakeupWithK with Params.K set; both
// are Θ(k log(n/k)+1). Scenario C needs neither and costs an extra
// O(log log n) factor. NewRPD gives the §6 randomized baseline.
//
// The channel itself is pluggable: RunOptions.Channel accepts a
// ChannelModel — the paper's regime (ChannelNone), full or sender-side
// collision detection (ChannelCD, ChannelSenderCD), acknowledgement-only
// feedback (ChannelAck), or reproducibly perturbed channels (ChannelNoisy,
// ChannelJam) — and every run accounts energy as transmissions plus
// listening slots (Result.Energy).
//
// The companion package nsmac/sweep is the experiment API: declarative
// grids (algorithms × wake patterns × channel models × {n, k} axes),
// serializable spec documents, and cross-process shard/merge with
// byte-identical output.
//
// See README.md for the public-API and CLI quickstart, including a worked
// shard→merge example; the theorem-backed experiment tables (T1…T12) are
// runnable via cmd/wakeup-bench, and the benchmarks live in bench_test.go.
package nsmac

import (
	"nsmac/internal/adversary"
	"nsmac/internal/channel"
	"nsmac/internal/core"
	"nsmac/internal/mathx"
	"nsmac/internal/model"
	"nsmac/internal/schedule"
	"nsmac/internal/sim"
)

// Core vocabulary (aliases into the internal model so users can name every
// type that appears in the API).
type (
	// Params is an algorithm's knowledge: N always; K > 0 in Scenario B;
	// S >= 0 in Scenario A (use S = -1 and K = 0 for Scenario C).
	Params = model.Params
	// WakePattern is the adversary's move: which stations wake, and when.
	WakePattern = model.WakePattern
	// Result reports a run: winner, success slot, rounds (t − s).
	Result = model.Result
	// Algorithm builds per-station transmission schedules.
	Algorithm = model.Algorithm
	// TransmitFunc is a station's schedule on the global clock.
	TransmitFunc = model.TransmitFunc
	// Feedback is what a slot sounds like (silence / success / collision).
	Feedback = model.Feedback
	// ChannelModel is the pluggable channel regime: feedback filtering per
	// station role, plus optional reproducible slot perturbation (noise,
	// jamming). Set RunOptions.Channel to one of ChannelNone, ChannelCD,
	// ChannelSenderCD, ChannelAck, ChannelNoisy, ChannelJam — or register a
	// custom model with sweep.RegisterChannel to use it as a sweep axis.
	ChannelModel = model.ChannelModel
	// FeedbackModel selects between the two original feedback regimes.
	//
	// Deprecated: the enum survives as an alias layer over the ChannelModel
	// API; NoCollisionDetection and CollisionDetection resolve to the
	// ChannelNone and ChannelCD built-in models (via its Model method).
	FeedbackModel = model.FeedbackModel
	// Channel is the slotted medium; returned by Run for transcript access.
	Channel = channel.Channel
	// RunOptions configures a simulation (horizon, feedback, tracing).
	RunOptions = sim.Options
	// AllResult reports a conflict-resolution run (every station succeeds).
	AllResult = sim.AllResult
	// SwapResult reports a Theorem 2.1 adversary search.
	SwapResult = adversary.SwapResult
	// SpoilerResult reports a white-box wake-time attack.
	SpoilerResult = adversary.SpoilerResult
	// Interleaved is the §3/§4 slot-parity combinator type.
	Interleaved = schedule.Interleaved
)

// Feedback constants.
const (
	Silence   = model.Silence
	Success   = model.Success
	Collision = model.Collision

	// NoCollisionDetection is the paper's feedback model.
	//
	// Deprecated: use RunOptions.Channel = ChannelNone() (the default).
	NoCollisionDetection = model.NoCollisionDetection
	// CollisionDetection passes collision feedback through (TreeCD).
	//
	// Deprecated: use RunOptions.Channel = ChannelCD().
	CollisionDetection = model.CollisionDetection
)

// Channel models ---------------------------------------------------------
//
// The channel is pluggable: RunOptions.Channel selects the feedback regime
// and any reproducible perturbation, and nsmac/sweep exposes the same
// vocabulary as a grid axis (SpecDoc "channels", CLI -channels) with energy
// accounting (transmissions + listening slots) in the rendered output.

// ChannelNone returns the paper's channel: no collision detection, so a
// collision is indistinguishable from silence for every station. It is the
// default when RunOptions.Channel is nil.
func ChannelNone() ChannelModel { return model.None() }

// ChannelCD returns the full collision-detection channel (TreeCD's model).
func ChannelCD() ChannelModel { return model.CD() }

// ChannelSenderCD returns the sender-side collision-detection channel: only
// stations that transmitted in a slot learn whether they collided.
func ChannelSenderCD() ChannelModel { return model.SenderCD() }

// ChannelAck returns the acknowledgement-only channel: only the successful
// sender hears its success; everything else sounds like silence.
func ChannelAck() ChannelModel { return model.Ack() }

// ChannelNoisy returns the paper's channel with erasure noise: each
// non-silent slot flips to silence with probability p, drawn reproducibly
// from the run seed's derived channel stream. Panics unless 0 <= p <= 1.
func ChannelNoisy(p float64) ChannelModel { return model.Noisy(p) }

// ChannelJam returns the paper's channel with an adversarial jammer of
// budget q: the first q would-be successes become collisions. Panics on
// q < 0.
func ChannelJam(q int64) ChannelModel { return model.Jam(q) }

// Simultaneous builds the pattern where all given stations wake at slot s.
func Simultaneous(ids []int, s int64) WakePattern { return model.Simultaneous(ids, s) }

// ScenarioA builds Params for the known-start-time scenario (§3): stations
// know n and the first wake-up slot s.
func ScenarioA(n int, s int64, seed uint64) Params {
	return Params{N: n, S: s, Seed: seed}
}

// ScenarioB builds Params for the known-bound scenario (§4): stations know
// n and the bound k on awake stations.
func ScenarioB(n, k int, seed uint64) Params {
	return Params{N: n, K: k, S: -1, Seed: seed}
}

// ScenarioC builds Params for the zero-knowledge scenario (§5): stations
// know only n. Prefer this over a Params literal — the struct's zero value
// of S denotes a KNOWN start time 0 (Scenario A), not ignorance.
func ScenarioC(n int, seed uint64) Params {
	return Params{N: n, S: -1, Seed: seed}
}

// Run simulates one wake-up instance and stops at the first slot carrying a
// solo transmission. The returned Channel exposes the transcript when
// RunOptions.RecordTrace is set.
func Run(algo Algorithm, p Params, w WakePattern, opt RunOptions) (Result, *Channel, error) {
	return sim.Run(algo, p, w, opt)
}

// RunAll simulates until EVERY awake station has transmitted alone
// (conflict resolution); the algorithm must be feedback-driven (e.g.
// NewKGConflictResolution, NewTreeCD).
func RunAll(algo Algorithm, p Params, w WakePattern, opt RunOptions) (AllResult, error) {
	return sim.RunAll(algo, p, w, opt)
}

// The paper's algorithms ------------------------------------------------

// NewRoundRobin returns time-division multiplexing: ≤ n slots, optimal for
// k > n/c (Corollary 2.1).
func NewRoundRobin() Algorithm { return core.NewRoundRobin() }

// NewWakeupWithS returns the Scenario A algorithm (§3): requires Params.S.
// Θ(k log(n/k) + 1).
func NewWakeupWithS() *Interleaved { return core.NewWakeupWithS() }

// NewWakeupWithK returns the Scenario B algorithm (§4): requires Params.K.
// Θ(k log(n/k) + 1).
func NewWakeupWithK() *Interleaved { return core.NewWakeupWithK() }

// WakeupC is the Scenario C algorithm's concrete type (exported so callers
// can reach Horizon and the ablation switches).
type WakeupC = core.WakeupC

// NewWakeupC returns the Scenario C algorithm (§5): no knowledge of s or k.
// O(k log n log log n) (Theorem 5.3).
func NewWakeupC() *WakeupC { return core.NewWakeupC() }

// RPD is the §6 randomized baseline's concrete type.
type RPD = core.RPD

// NewRPD returns Repeated Probability Decrease with ℓ = 2⌈log n⌉: expected
// O(log n) wake-up.
func NewRPD() *RPD { return core.NewRPD() }

// NewRPDWithK returns RPD with ℓ = 2⌈log k⌉ (requires Params.K): expected
// O(log k), optimal by Kushilevitz–Mansour.
func NewRPDWithK() *RPD { return core.NewRPDWithK() }

// Extensions and baselines ----------------------------------------------

// NewKGConflictResolution returns the Komlós–Greenberg extension: run with
// RunAll to let every awake station transmit alone in O(k + k log(n/k)).
func NewKGConflictResolution() Algorithm { return core.NewKGConflictResolution() }

// NewTreeCD returns Capetanakis binary splitting (requires
// CollisionDetection feedback, Adaptive run options, simultaneous start).
func NewTreeCD() Algorithm { return core.NewTreeCD() }

// NewLocalSSF returns the heuristic locally-synchronized baseline (see
// DESIGN.md §4 substitution 3).
func NewLocalSSF() Algorithm { return core.NewLocalSSF() }

// NewBEB returns binary exponential backoff, the Aloha/Ethernet practical
// baseline (no worst-case guarantee in this model).
func NewBEB() Algorithm { return core.NewBEB() }

// NewClockSkewed degrades the global clock: each of inner's stations
// perceives time with a private offset in [0, maxSkew]. Used to probe the
// paper's concluding conjecture that the global clock is essential (T12).
func NewClockSkewed(inner Algorithm, maxSkew int64) Algorithm {
	return core.NewClockSkewed(inner, maxSkew)
}

// Bounds ------------------------------------------------------------------

// BoundKLogNK returns the Scenario A/B bound k·log2(n/k)+k+1.
func BoundKLogNK(n, k int) int64 { return mathx.BoundKLogNK(n, k) }

// BoundKLogLogLog returns the Scenario C bound k·⌈log n⌉·⌈log log n⌉.
func BoundKLogLogLog(n, k int) int64 { return mathx.BoundKLogLogLog(n, k) }

// BoundLower returns Theorem 2.1's lower bound min{k, n−k+1}.
func BoundLower(n, k int) int64 { return mathx.BoundLowerMinKN(n, k) }

// WakeupWithSHorizon returns a safe simulation horizon for NewWakeupWithS.
func WakeupWithSHorizon(n, k int) int64 { return core.WakeupWithSHorizon(n, k) }

// WakeupWithKHorizon returns a safe simulation horizon for NewWakeupWithK.
func WakeupWithKHorizon(n, k int) int64 { return core.WakeupWithKHorizon(n, k) }

// Adversary ---------------------------------------------------------------

// SwapAdversary runs the Theorem 2.1 swap adversary against a deterministic
// algorithm and returns the witness set and forced rounds.
func SwapAdversary(algo Algorithm, p Params, k int, horizon int64, greedy bool) SwapResult {
	return adversary.Swap(algo, p, k, horizon, greedy)
}

// SpoilerAdversary mounts the white-box wake-time attack: it wakes a
// colliding partner at every would-be success slot until the budget of k−1
// extra stations is spent. The §4/§5 wait barriers neutralize it; ablated
// variants do not (experiment T8).
func SpoilerAdversary(algo Algorithm, p Params, k int, horizon int64) SpoilerResult {
	return adversary.Spoiler(algo, p, k, horizon)
}

// SpoilerAdversaryFrom is SpoilerAdversary with an explicit initial station
// (wakes at slot 0, defines s).
func SpoilerAdversaryFrom(algo Algorithm, p Params, k int, horizon int64, firstID int) SpoilerResult {
	return adversary.SpoilerFrom(algo, p, k, horizon, firstID)
}
