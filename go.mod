module nsmac

go 1.24
